(* Tests for the v2 content-addressed result store: sharded layout, v1
   read-through + migration, race-lost-is-a-hit publish, eviction with
   pinning, quarantine, ENOSPC degradation, fsck, fault-point / env
   validation, the Remote backoff cap, and the multi-process writer
   hammer. *)

module Runner = Chex86_harness.Runner
module Store = Runner.Store
module Faultinject = Chex86_harness.Faultinject
module Cli = Chex86_harness.Cli

let store_dir = "_test_store_cache"

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_store f =
  Runner.reset_for_tests ();
  Faultinject.disarm_points ();
  rm_rf store_dir;
  Store.configure ~dir:store_dir;
  Store.set_max_bytes None;
  Fun.protect
    ~finally:(fun () ->
      Faultinject.disarm_points ();
      Store.set_max_bytes None;
      Store.disable ();
      rm_rf store_dir;
      Runner.reset_for_tests ())
    f

let dummy_run i : Runner.run =
  {
    Runner.outcome = Runner.Completed;
    macro_insns = 1000 + i;
    uops = 2000 + i;
    uops_injected = i;
    uops_killed = 0;
    cycles = 3000 + i;
    counters = Chex86_stats.Counter.create_group ();
    shadow_bytes = 64;
    resident_bytes = 4096;
    mem_bytes = 512;
    pwned = false;
    profile = None;
  }

let run_fields (r : Runner.run) =
  (r.Runner.outcome, r.Runner.macro_insns, r.Runner.uops, r.Runner.cycles)

let paths_exn ~key =
  match Store.entry_paths ~key ~digest:"test" with
  | Some p -> p
  | None -> Alcotest.fail "store not configured"

(* --- layout ---------------------------------------------------------------- *)

let test_sharded_layout () =
  with_store (fun () ->
      Store.save ~key:"alpha" ~digest:"test" (dummy_run 1);
      let v1, v2 = paths_exn ~key:"alpha" in
      Alcotest.(check bool) "entry lives in objects/<shard>/" true (Sys.file_exists v2);
      Alcotest.(check bool) "no flat v1 entry" false (Sys.file_exists v1);
      let shard = Filename.basename (Filename.dirname v2) in
      Alcotest.(check int) "shard is two hex chars" 2 (String.length shard);
      (match Store.load ~key:"alpha" ~digest:"test" with
      | Some r -> Alcotest.(check bool) "roundtrip" true (run_fields r = run_fields (dummy_run 1))
      | None -> Alcotest.fail "expected a hit");
      let s = Store.stats () in
      Alcotest.(check int) "one write" 1 s.Store.writes;
      Alcotest.(check int) "one hit" 1 s.Store.hits)

let test_v1_read_through_and_migration () =
  with_store (fun () ->
      (* Hand-build a legacy v1 entry at the flat path. *)
      let v1, v2 = paths_exn ~key:"legacy" in
      Unix.mkdir store_dir 0o755;
      let payload = Marshal.to_string (dummy_run 7 : Runner.run) [] in
      let oc = open_out_bin v1 in
      Printf.fprintf oc "chex86-store-v1\n%s\n%s"
        (Digest.to_hex (Digest.string payload))
        payload;
      close_out oc;
      (match Store.load ~key:"legacy" ~digest:"test" with
      | Some r ->
        Alcotest.(check bool) "v1 entry served" true (run_fields r = run_fields (dummy_run 7))
      | None -> Alcotest.fail "expected a v1 read-through hit");
      Alcotest.(check bool) "migrated into objects/" true (Sys.file_exists v2);
      Alcotest.(check bool) "flat v1 entry drained" false (Sys.file_exists v1);
      let s = Store.stats () in
      Alcotest.(check int) "migration counted" 1 s.Store.migrated;
      Alcotest.(check int) "served as a hit" 1 s.Store.hits;
      (* The migrated entry is a first-class v2 entry. *)
      Runner.reset_for_tests ();
      (match Store.load ~key:"legacy" ~digest:"test" with
      | Some _ -> ()
      | None -> Alcotest.fail "migrated entry must hit");
      let r = Store.fsck ~dir:store_dir in
      Alcotest.(check bool) "fsck clean after migration" true (Store.fsck_clean r))

let test_lost_race_is_a_hit () =
  with_store (fun () ->
      Store.save ~key:"contested" ~digest:"test" (dummy_run 1);
      (* A second publish of the same key (another process in real
         life) must not raise and must count as a lost race. *)
      Store.save ~key:"contested" ~digest:"test" (dummy_run 1);
      let s = Store.stats () in
      Alcotest.(check int) "one winner" 1 s.Store.writes;
      Alcotest.(check int) "one lost race" 1 s.Store.race_lost;
      Alcotest.(check int) "no write errors" 0 s.Store.write_errors;
      Alcotest.(check bool) "entry intact" true
        (Option.is_some (Store.load ~key:"contested" ~digest:"test")))

(* --- eviction -------------------------------------------------------------- *)

let entry_bytes () =
  let r = Store.fsck ~dir:store_dir in
  r.Store.f_bytes

let test_eviction_respects_budget_and_pins () =
  with_store (fun () ->
      let keys = [ "ev-a"; "ev-b"; "ev-c"; "ev-d"; "ev-e" ] in
      List.iteri (fun i key -> Store.save ~key ~digest:"test" (dummy_run i)) keys;
      (* Age the entries oldest-first in list order. *)
      List.iteri
        (fun i key ->
          let _, v2 = paths_exn ~key in
          let t = Unix.time () -. 1000. +. (10. *. float_of_int i) in
          Unix.utimes v2 t t)
        keys;
      let total = entry_bytes () in
      let per_entry = total / 5 in
      let budget = (2 * per_entry) + (per_entry / 2) in
      (* Everything is pinned by the in-flight "sweep" (this process
         published them): the budget must not evict anything. *)
      let r = Store.gc ~dir:store_dir ~max_bytes:budget () in
      Alcotest.(check int) "pinned entries survive over-budget gc" 0 r.Store.g_evicted;
      (* End of sweep: pins released, gc evicts oldest-first to budget. *)
      Store.clear_pins ();
      let r = Store.gc ~dir:store_dir ~max_bytes:budget () in
      Alcotest.(check bool) "evicted down to budget" true (r.Store.g_bytes <= budget);
      Alcotest.(check int) "three oldest evicted" 3 r.Store.g_evicted;
      let survives key =
        let _, v2 = paths_exn ~key in
        Sys.file_exists v2
      in
      Alcotest.(check bool) "oldest gone" false (survives "ev-a");
      Alcotest.(check bool) "newest kept" true (survives "ev-e");
      Alcotest.(check bool) "second newest kept" true (survives "ev-d"))

let test_save_evicts_when_over_budget () =
  with_store (fun () ->
      Store.save ~key:"first" ~digest:"test" (dummy_run 0);
      let per_entry = entry_bytes () in
      (* Room for ~2 entries; the in-flight sweep keeps publishing. *)
      Store.set_max_bytes (Some (2 * per_entry));
      List.iteri
        (fun i key -> Store.save ~key ~digest:"test" (dummy_run i))
        [ "ev2-b"; "ev2-c"; "ev2-d" ];
      (* All four entries are pinned (this process published them), so
         nothing could be evicted — but the budget machinery must have
         run without disturbing the sweep's own entries. *)
      List.iter
        (fun key ->
          let _, v2 = paths_exn ~key in
          Alcotest.(check bool) (key ^ " still present") true (Sys.file_exists v2))
        [ "first"; "ev2-b"; "ev2-c"; "ev2-d" ];
      (* A later process with no pins gets the store back under budget. *)
      Store.clear_pins ();
      let r = Store.gc ~dir:store_dir ()  in
      Alcotest.(check bool) "gc honors the process-wide budget" true
        (r.Store.g_bytes <= 2 * per_entry))

(* --- quarantine / degradation ----------------------------------------------- *)

let test_corrupt_entry_quarantined () =
  with_store (fun () ->
      Store.save ~key:"corrupt" ~digest:"test" (dummy_run 3);
      let _, v2 = paths_exn ~key:"corrupt" in
      Unix.truncate v2 21;
      Alcotest.(check bool) "torn entry is a miss" true
        (Store.load ~key:"corrupt" ~digest:"test" = None);
      let s = Store.stats () in
      Alcotest.(check int) "quarantined" 1 s.Store.quarantined;
      Alcotest.(check int) "discarded" 1 s.Store.discarded;
      Alcotest.(check bool) "moved out of objects/" false (Sys.file_exists v2);
      let qdir = Filename.concat store_dir "quarantine" in
      Alcotest.(check int) "kept for post-mortem" 1 (Array.length (Sys.readdir qdir));
      (* A second load is a plain miss, not a second quarantine. *)
      Alcotest.(check bool) "second load misses" true
        (Store.load ~key:"corrupt" ~digest:"test" = None);
      Alcotest.(check int) "no double quarantine" 1 (Store.stats ()).Store.quarantined)

let test_enospc_degrades_to_memo_only () =
  with_store (fun () ->
      Store.save ~key:"before" ~digest:"test" (dummy_run 1);
      (* Every publish now fails with ENOSPC at the pre-write point. *)
      Faultinject.arm_points
        [ ("store.publish.pre_write",
           { Faultinject.action = Faultinject.Point_enospc; arm_at = 0 }) ];
      Store.save ~key:"during" ~digest:"test" (dummy_run 2);
      let s = Store.stats () in
      Alcotest.(check bool) "store degraded" true s.Store.degraded;
      Alcotest.(check int) "write error counted" 1 s.Store.write_errors;
      (* Degraded = memo-only writes; loads keep serving and further
         saves are silently skipped, not errors. *)
      Store.save ~key:"after" ~digest:"test" (dummy_run 3);
      Alcotest.(check int) "no further write attempts" 1
        (Store.stats ()).Store.write_errors;
      Alcotest.(check bool) "reads still serve" true
        (Option.is_some (Store.load ~key:"before" ~digest:"test"));
      Faultinject.disarm_points ();
      Store.save ~key:"still-degraded" ~digest:"test" (dummy_run 4);
      let _, v2 = paths_exn ~key:"still-degraded" in
      Alcotest.(check bool) "degradation latches for the process" false
        (Sys.file_exists v2);
      (* Reconfiguring (a new sweep) resets the latch. *)
      Store.configure ~dir:store_dir;
      Store.save ~key:"recovered" ~digest:"test" (dummy_run 5);
      let _, v2 = paths_exn ~key:"recovered" in
      Alcotest.(check bool) "writes recover after reconfigure" true
        (Sys.file_exists v2))

(* --- fsck ------------------------------------------------------------------- *)

let test_fsck_flags_and_heals_violations () =
  with_store (fun () ->
      List.iteri
        (fun i key -> Store.save ~key ~digest:"test" (dummy_run i))
        [ "fsck-a"; "fsck-b"; "fsck-c" ];
      let r = Store.fsck ~dir:store_dir in
      Alcotest.(check bool) "healthy store is clean" true (Store.fsck_clean r);
      Alcotest.(check int) "all entries scanned" 3 r.Store.f_scanned;
      (* Violation 1: corrupt entry.  Violation 2: entry moved to the
         wrong shard.  Violation 3: foreign file in the store root. *)
      let _, va = paths_exn ~key:"fsck-a" in
      Unix.truncate va 19;
      let _, vb = paths_exn ~key:"fsck-b" in
      let actual_shard = Filename.basename (Filename.dirname vb) in
      let other = if actual_shard = "00" then "11" else "00" in
      let wrong_shard = Filename.concat (Filename.concat store_dir "objects") other in
      (try Unix.mkdir wrong_shard 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Sys.rename vb (Filename.concat wrong_shard (Filename.basename vb));
      let foreign = Filename.concat store_dir "README.txt" in
      let oc = open_out foreign in
      output_string oc "not an entry";
      close_out oc;
      let r = Store.fsck ~dir:store_dir in
      Alcotest.(check bool) "violations detected" false (Store.fsck_clean r);
      Alcotest.(check bool) "at least three issues" true
        (List.length r.Store.f_issues >= 3);
      (* fsck quarantines what it can (corrupt + misplaced); the
         foreign file is only reported. *)
      Sys.remove foreign;
      let r2 = Store.fsck ~dir:store_dir in
      Alcotest.(check bool) "second run comes back clean" true (Store.fsck_clean r2);
      Alcotest.(check int) "untouched entry still ok" 1 r2.Store.f_ok)

let test_fsck_reclaims_stale_tmp_only () =
  with_store (fun () ->
      Store.save ~key:"tmp-anchor" ~digest:"test" (dummy_run 1);
      let _, v2 = paths_exn ~key:"tmp-anchor" in
      let shard_dir = Filename.dirname v2 in
      let dead_pid =
        let pid =
          Unix.create_process "/bin/true" [| "/bin/true" |] Unix.stdin Unix.stdout
            Unix.stderr
        in
        ignore (Unix.waitpid [] pid);
        pid
      in
      let stale = Filename.concat shard_dir (Printf.sprintf ".tmp-%d-0-x.run" dead_pid) in
      let young = Filename.concat shard_dir (Printf.sprintf ".tmp-%d-1-y.run" dead_pid) in
      List.iter
        (fun p ->
          let oc = open_out p in
          output_string oc "torn";
          close_out oc)
        [ stale; young ];
      let old = Unix.time () -. 120. in
      Unix.utimes stale old old;
      let r = Store.fsck ~dir:store_dir in
      Alcotest.(check bool) "tmp files are not violations" true (Store.fsck_clean r);
      Alcotest.(check int) "stale tmp reclaimed" 1 r.Store.f_tmp_reclaimed;
      Alcotest.(check int) "young tmp left pending" 1 r.Store.f_tmp_pending;
      Alcotest.(check bool) "young tmp kept on disk" true (Sys.file_exists young))

(* --- env / spec validation -------------------------------------------------- *)

let with_env pairs f =
  let old = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (k, v) -> Unix.putenv k (Option.value ~default:"" v)) old;
      Faultinject.disarm ();
      Faultinject.disarm_points ())
    f

let check_env_error pairs needle =
  with_env pairs (fun () ->
      match Faultinject.arm_from_env () with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error %S names the offending value %S" msg needle)
          true
          (let rec contains i =
             i + String.length needle <= String.length msg
             && (String.sub msg i (String.length needle) = needle || contains (i + 1))
           in
           contains 0)
      | Ok _ -> Alcotest.fail "malformed env must be rejected loudly")

let test_env_validation_fails_loudly () =
  check_env_error [ ("CHEX86_FAULT_RATE", "banana") ] "banana";
  check_env_error [ ("CHEX86_FAULT_RATE", "1.5") ] "1.5";
  (* Malformed SEED/KIND are rejected even when RATE is unset — a typo
     must never silently disable the plan it was meant to shape. *)
  check_env_error [ ("CHEX86_FAULT_SEED", "not-a-seed") ] "not-a-seed";
  check_env_error
    [ ("CHEX86_FAULT_RATE", "0.5"); ("CHEX86_FAULT_KIND", "explode") ]
    "explode";
  check_env_error [ ("CHEX86_FAULT_POINT", "store.publish.bogus") ] "store.publish.bogus";
  check_env_error
    [ ("CHEX86_FAULT_POINT", "store.publish.pre_rename=torn:x") ]
    "torn:x";
  with_env [ ("CHEX86_FAULT_RATE", "0.25"); ("CHEX86_FAULT_SEED", "7") ] (fun () ->
      match Faultinject.arm_from_env () with
      | Ok true -> ()
      | _ -> Alcotest.fail "valid env must arm the plan")

let test_points_of_spec () =
  (match
     Faultinject.points_of_spec "store.publish.pre_rename=kill@3,store.load.pre_read=delay:0.5"
   with
  | Ok [ (p1, s1); (p2, s2) ] ->
    Alcotest.(check string) "first point" "store.publish.pre_rename" p1;
    Alcotest.(check bool) "kill at 3" true
      (s1.Faultinject.action = Faultinject.Point_kill && s1.Faultinject.arm_at = 3);
    Alcotest.(check string) "second point" "store.load.pre_read" p2;
    Alcotest.(check bool) "delay action" true
      (s2.Faultinject.action = Faultinject.Point_delay 0.5)
  | Ok _ -> Alcotest.fail "expected two points"
  | Error msg -> Alcotest.fail msg);
  (match Faultinject.points_of_spec "store.publish.pre_rename=kill@zero" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad ordinal must be rejected");
  match Faultinject.points_of_spec "not.a.point" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown point must be rejected"

let test_torn_point_never_publishes () =
  (* A torn write at mid_write must leave a tmp artifact at worst,
     never a published entry a reader would trust. *)
  with_store (fun () ->
      Faultinject.arm_points
        [ ("store.publish.mid_write",
           { Faultinject.action = Faultinject.Point_torn 10; arm_at = 1 }) ];
      Store.save ~key:"torn" ~digest:"test" (dummy_run 1);
      Faultinject.disarm_points ();
      (* The publish went through but with a torn payload: the link
         published the truncated file, which the loader must reject. *)
      Alcotest.(check bool) "torn entry never served" true
        (Store.load ~key:"torn" ~digest:"test" = None);
      Alcotest.(check int) "torn entry quarantined" 1 (Store.stats ()).Store.quarantined;
      let r = Store.fsck ~dir:store_dir in
      Alcotest.(check bool) "fsck clean after quarantine" true (Store.fsck_clean r))

(* --- CLI byte parsing ------------------------------------------------------- *)

let test_parse_bytes () =
  Alcotest.(check bool) "plain" true (Cli.parse_bytes "1024" = Ok 1024);
  Alcotest.(check bool) "K" true (Cli.parse_bytes "4K" = Ok 4096);
  Alcotest.(check bool) "M" true (Cli.parse_bytes "2M" = Ok (2 * 1024 * 1024));
  Alcotest.(check bool) "G" true (Cli.parse_bytes "1G" = Ok (1024 * 1024 * 1024));
  Alcotest.(check bool) "lowercase" true (Cli.parse_bytes "4k" = Ok 4096);
  Alcotest.(check bool) "negative rejected" true (Result.is_error (Cli.parse_bytes "-1"));
  Alcotest.(check bool) "garbage rejected" true (Result.is_error (Cli.parse_bytes "1Q"));
  Alcotest.(check bool) "empty rejected" true (Result.is_error (Cli.parse_bytes ""))

(* --- remote backoff cap ----------------------------------------------------- *)

let test_backoff_cap_holds () =
  let module Remote = Chex86_harness.Remote in
  let cap = Remote.max_backoff_delay *. 1.25 in
  List.iter
    (fun restarts ->
      let d = Remote.backoff_delay ~sid:0 ~restarts in
      Alcotest.(check bool)
        (Printf.sprintf "delay finite and capped at ordinal %d" restarts)
        true
        (Float.is_finite d && d > 0. && d <= cap +. 1e-9))
    [ 1; 5; 10; 60; 1030; 5000; max_int ]

(* --- multi-process writers -------------------------------------------------- *)

let chaos_soak_exe () =
  let candidate =
    Filename.concat (Filename.dirname Sys.executable_name) "chaos_soak.exe"
  in
  if Sys.file_exists candidate then Some candidate else None

let parse_counter line name =
  (* "writes=3 race_lost=2 ..." *)
  let tokens = String.split_on_char ' ' (String.trim line) in
  let prefix = name ^ "=" in
  match
    List.find_opt
      (fun t ->
        String.length t > String.length prefix
        && String.sub t 0 (String.length prefix) = prefix)
      tokens
  with
  | Some t ->
    int_of_string (String.sub t (String.length prefix) (String.length t - String.length prefix))
  | None -> Alcotest.fail (Printf.sprintf "missing %s in hammer output %S" name line)

let test_multiprocess_writers () =
  match chaos_soak_exe () with
  | None -> Alcotest.skip ()
  | Some exe ->
    Runner.reset_for_tests ();
    rm_rf store_dir;
    Unix.mkdir store_dir 0o755;
    Fun.protect ~finally:(fun () -> rm_rf store_dir)
    @@ fun () ->
    let shared = 6 and disjoint = 4 in
    let spawn seed =
      let out, inp = Unix.pipe () in
      let pid =
        Unix.create_process exe
          [|
            exe; "--hammer"; store_dir; string_of_int seed; string_of_int shared;
            string_of_int disjoint;
          |]
          Unix.stdin inp Unix.stderr
      in
      Unix.close inp;
      (pid, out)
    in
    let a = spawn 1 and b = spawn 2 in
    (* Both children are waiting on the barrier; release them together
       so the contested keys actually race. *)
    let oc = open_out (Filename.concat store_dir "go") in
    close_out oc;
    let read_child (pid, fd) =
      let ic = Unix.in_channel_of_descr fd in
      let line = input_line ic in
      let _, status = Unix.waitpid [] pid in
      close_in ic;
      Alcotest.(check bool) "hammer child exited 0" true (status = Unix.WEXITED 0);
      line
    in
    let la = read_child a and lb = read_child b in
    Sys.remove (Filename.concat store_dir "go");
    let sum name = parse_counter la name + parse_counter lb name in
    (* Exactly one winner per key: every contested key was published
       once, every private key once, and every lost race was counted
       as such — no double wins, no corruption, no quarantines. *)
    Alcotest.(check int) "one winner per key" (shared + (2 * disjoint)) (sum "writes");
    Alcotest.(check int) "losers counted race_lost" shared (sum "race_lost");
    Alcotest.(check int) "no quarantined entries" 0 (sum "quarantined");
    Alcotest.(check int) "no write errors" 0 (sum "write_errors");
    let r = Store.fsck ~dir:store_dir in
    Alcotest.(check bool) "fsck clean after the stampede" true (Store.fsck_clean r);
    Alcotest.(check int) "all entries on disk" (shared + (2 * disjoint)) r.Store.f_ok

let () =
  Alcotest.run "store"
    [
      ( "layout",
        [
          Alcotest.test_case "sharded v2 layout" `Quick test_sharded_layout;
          Alcotest.test_case "v1 read-through + migration" `Quick
            test_v1_read_through_and_migration;
          Alcotest.test_case "lost race is a hit" `Quick test_lost_race_is_a_hit;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "budget + pinning" `Quick
            test_eviction_respects_budget_and_pins;
          Alcotest.test_case "in-sweep saves never evict own entries" `Quick
            test_save_evicts_when_over_budget;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "corrupt entry quarantined" `Quick
            test_corrupt_entry_quarantined;
          Alcotest.test_case "ENOSPC degrades to memo-only" `Quick
            test_enospc_degrades_to_memo_only;
          Alcotest.test_case "torn point never publishes" `Quick
            test_torn_point_never_publishes;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "flags and heals violations" `Quick
            test_fsck_flags_and_heals_violations;
          Alcotest.test_case "stale tmp reclaimed, young kept" `Quick
            test_fsck_reclaims_stale_tmp_only;
        ] );
      ( "validation",
        [
          Alcotest.test_case "env rejected loudly" `Quick test_env_validation_fails_loudly;
          Alcotest.test_case "point spec parsing" `Quick test_points_of_spec;
          Alcotest.test_case "byte suffix parsing" `Quick test_parse_bytes;
        ] );
      ( "remote",
        [ Alcotest.test_case "backoff cap holds" `Quick test_backoff_cap_holds ] );
      ( "multiprocess",
        [
          Alcotest.test_case "two writers, one winner per key" `Quick
            test_multiprocess_writers;
        ] );
    ]
