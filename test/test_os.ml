(* Tests for the OS substrate: the exploitable allocator (including the
   glibc-style integrity checks and the exploit-enabling behaviours the
   How2Heap suite relies on), MSRs, process loading and the heap
   profiler. *)

module Allocator = Chex86_os.Allocator
module Layout = Chex86_os.Layout
module Msrs = Chex86_os.Msrs
module Image = Chex86_mem.Image
module Counter = Chex86_stats.Counter

let new_heap () =
  let mem = Image.create () in
  let g = Counter.create_group () in
  (Allocator.create mem g, mem)

let new_heap_p personality =
  let mem = Image.create () in
  let g = Counter.create_group () in
  (Allocator.create ~personality mem g, mem)

let test_malloc_basics () =
  let heap, _ = new_heap () in
  let p = Allocator.malloc heap 100 in
  Alcotest.(check bool) "non-null" true (p <> 0);
  Alcotest.(check int) "16-aligned" 0 (p land 0xF);
  Alcotest.(check bool) "in heap" true (p >= Layout.heap_base && p < Layout.heap_max);
  Alcotest.(check int) "chunk size covers request" 128 (Allocator.chunk_size heap p)

let test_malloc_zero_and_negative () =
  let heap, _ = new_heap () in
  Alcotest.(check int) "malloc(0)" 0 (Allocator.malloc heap 0);
  Alcotest.(check int) "malloc(-1)" 0 (Allocator.malloc heap (-1))

let test_malloc_huge_fails () =
  let heap, _ = new_heap () in
  Alcotest.(check int) "over heap_max returns NULL" 0 (Allocator.malloc heap (1 lsl 31))

let test_adjacent_allocations () =
  let heap, _ = new_heap () in
  let a = Allocator.malloc heap 32 in
  let b = Allocator.malloc heap 32 in
  Alcotest.(check int) "consecutive chunks adjacent" (a + 48) b

let test_first_fit_reuse () =
  let heap, _ = new_heap () in
  let a = Allocator.malloc heap 512 in
  let _b = Allocator.malloc heap 256 in
  Allocator.free heap a;
  let c = Allocator.malloc heap 500 in
  Alcotest.(check int) "freed chunk reused first-fit" a c

let test_fastbin_lifo () =
  let heap, _ = new_heap () in
  let a = Allocator.malloc heap 64 in
  let b = Allocator.malloc heap 64 in
  Allocator.free heap a;
  Allocator.free heap b;
  Alcotest.(check int) "LIFO: last freed first out" b (Allocator.malloc heap 64);
  Alcotest.(check int) "then the earlier one" a (Allocator.malloc heap 64)

let test_split_leaves_remainder () =
  let heap, _ = new_heap () in
  let a = Allocator.malloc heap 496 in
  let barrier = Allocator.malloc heap 32 in
  Allocator.free heap a;
  let small = Allocator.malloc heap 200 in
  Alcotest.(check int) "split serves from the old chunk" a small;
  let rest = Allocator.malloc heap 240 in
  Alcotest.(check bool) "remainder served below the barrier" true (rest < barrier)

let test_backward_coalescing () =
  let heap, _ = new_heap () in
  let a = Allocator.malloc heap 240 in
  let b = Allocator.malloc heap 240 in
  let _barrier = Allocator.malloc heap 32 in
  Allocator.free heap a;
  Allocator.free heap b;  (* coalesces backward with a *)
  let big = Allocator.malloc heap 480 in
  Alcotest.(check int) "merged chunk serves a larger request" a big

let test_calloc_zeroes () =
  let heap, mem = new_heap () in
  let p = Allocator.malloc heap 64 in
  Image.write64 mem p 0xDEAD;
  Allocator.free heap p;
  let q = Allocator.calloc heap ~count:8 ~size:8 in
  Alcotest.(check int) "recycled chunk" p q;
  Alcotest.(check int) "zeroed payload" 0 (Image.read64 mem q)

let test_realloc_preserves () =
  let heap, mem = new_heap () in
  let p = Allocator.malloc heap 64 in
  Image.write64 mem p 0x1234;
  Image.write64 mem (p + 8) 0x5678;
  let q = Allocator.realloc heap p 256 in
  Alcotest.(check bool) "moved" true (q <> p);
  Alcotest.(check int) "word 0 copied" 0x1234 (Image.read64 mem q);
  Alcotest.(check int) "word 1 copied" 0x5678 (Image.read64 mem (q + 8))

let test_fasttop_double_free_abort () =
  let heap, _ = new_heap () in
  let a = Allocator.malloc heap 64 in
  Allocator.free heap a;
  Alcotest.check_raises "fasttop"
    (Allocator.Heap_abort "double free or corruption (fasttop)") (fun () ->
      Allocator.free heap a)

let test_prev_double_free_abort () =
  let heap, _ = new_heap () in
  let a = Allocator.malloc heap 512 in
  let _barrier = Allocator.malloc heap 32 in
  Allocator.free heap a;
  Alcotest.check_raises "!prev"
    (Allocator.Heap_abort "double free or corruption (!prev)") (fun () ->
      Allocator.free heap a)

let test_invalid_free_aborts () =
  let heap, _ = new_heap () in
  let a = Allocator.malloc heap 64 in
  Alcotest.check_raises "misaligned" (Allocator.Heap_abort "free(): invalid pointer")
    (fun () -> Allocator.free heap (a + 4));
  Alcotest.check_raises "interior (bad size)"
    (Allocator.Heap_abort "free(): invalid size") (fun () ->
      Allocator.free heap (a + 16))

let test_free_null_is_noop () =
  let heap, _ = new_heap () in
  Allocator.free heap 0;
  Alcotest.(check pass) "free(NULL)" () ()

let test_consolidation_enables_fastbin_double_free () =
  (* The precondition of How2Heap's fastbin_dup_consolidate: a large
     malloc drains the fastbins, so a second free of the same chunk
     passes the fasttop check. *)
  let heap, _ = new_heap () in
  let a = Allocator.malloc heap 64 in
  Allocator.free heap a;
  let _big = Allocator.malloc heap 512 in
  Allocator.free heap a;  (* must NOT abort *)
  let x = Allocator.malloc heap 64 in
  let y = Allocator.malloc heap 64 in
  Alcotest.(check int) "chunk handed out twice" x y

let test_fastbin_fd_corruption_returns_forged_chunk () =
  (* The tcache_poisoning primitive: overwriting a freed chunk's fd makes
     malloc return an arbitrary address. *)
  let heap, mem = new_heap () in
  let a = Allocator.malloc heap 64 in
  Allocator.free heap a;
  let target = 0x665000 in
  Image.write64 mem a target;
  Alcotest.(check int) "first pop is the real chunk" a (Allocator.malloc heap 64);
  Alcotest.(check int) "second pop is the forged target" target (Allocator.malloc heap 64)

let test_top_chunk_corruption_house_of_force () =
  let heap, mem = new_heap () in
  let a = Allocator.malloc heap 256 in
  (* Overflow the top chunk's size field. *)
  Image.write64 mem (a + 264) (1 lsl 60);
  let target = Layout.heap_base + 0x100000 in
  let top_after = a + 272 in
  ignore (Allocator.malloc heap (target - top_after - 16));
  let p = Allocator.malloc heap 16 in
  Alcotest.(check int) "allocation lands on the forged top" target p

let qcheck_invariants_for personality =
  (* Random malloc/free sequences: live chunks stay 16-aligned, disjoint,
     inside the heap — on both allocator personalities. *)
  QCheck.Test.make
    ~name:
      (Printf.sprintf "random alloc/free keeps live chunks disjoint (%s)"
         (Allocator.personality_name personality))
    ~count:50
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 1 600))
    (fun sizes ->
      let heap, _ = new_heap_p personality in
      let live = ref [] in
      let rng = Chex86_stats.Rng.create (List.length sizes) in
      List.iter
        (fun size ->
          if Chex86_stats.Rng.int rng 4 = 0 && !live <> [] then begin
            match !live with
            | (p, _) :: rest ->
              Allocator.free heap p;
              live := rest
            | [] -> ()
          end
          else begin
            let p = Allocator.malloc heap size in
            if p <> 0 then live := (p, size) :: !live
          end)
        sizes;
      (* Glibc payloads are separated by a 16-byte boundary tag; the
         segregated personality packs slots back to back (metadata is
         out of line), so only plain payload disjointness applies. *)
      let gap = match personality with Allocator.Glibc -> 16 | Allocator.Segregated -> 0 in
      List.for_all
        (fun (p, size) ->
          p land 0xF = 0
          && p >= Layout.heap_base
          && p + size < Layout.heap_max
          && List.for_all
               (fun (q, qsize) -> q = p || p + size + gap <= q || q + qsize + gap <= p)
               !live)
        !live)

let qcheck_roundtrip_for personality =
  (* Alloc everything, free everything: no abort, the live count returns
     to zero, and the arena is reusable afterwards. *)
  QCheck.Test.make
    ~name:
      (Printf.sprintf "alloc/free round-trip (%s)"
         (Allocator.personality_name personality))
    ~count:50
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 1 600))
    (fun sizes ->
      let heap, _ = new_heap_p personality in
      let ptrs = List.filter_map
          (fun size ->
            match Allocator.malloc heap size with 0 -> None | p -> Some p)
          sizes
      in
      List.iter (Allocator.free heap) ptrs;
      Allocator.live_allocations heap = 0 && Allocator.malloc heap 64 <> 0)

let qcheck_safe_unlink_corruption =
  (* Scribbling garbage over a freed unsorted chunk's list pointers must
     trip the safe-unlink check when coalescing touches it, whatever the
     surrounding schedule — never a silent wild write. *)
  QCheck.Test.make ~name:"safe-unlink corruption aborts under random schedules"
    ~count:50
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 12) (int_range 1 600))
        (oneofl [ 0; 8 ])
        (int_range 1 0x3FFF_FFFF))
    (fun (prelude, which_ptr, garbage) ->
      let heap, mem = new_heap_p Allocator.Glibc in
      List.iter (fun s -> ignore (Allocator.malloc heap s)) prelude;
      let a = Allocator.malloc heap 504 in
      let b = Allocator.malloc heap 504 in
      let _guard = Allocator.malloc heap 24 in
      Allocator.free heap a;  (* into the unsorted bin *)
      Image.write64 mem (a + which_ptr) garbage;
      match Allocator.free heap b (* backward coalescing unlinks [a] *) with
      | () -> false
      | exception Allocator.Heap_abort msg -> msg = "corrupted double-linked list")

let test_segregated_basics () =
  let heap, _ = new_heap_p Allocator.Segregated in
  let p = Allocator.malloc heap 100 in
  Alcotest.(check bool) "non-null" true (p <> 0);
  Alcotest.(check int) "16-aligned" 0 (p land 0xF);
  Alcotest.(check int) "pow2 size class" 128 (Allocator.chunk_size heap p);
  let q = Allocator.malloc heap 100 in
  Alcotest.(check bool) "distinct slots" true (p <> q);
  Allocator.free heap p;
  Alcotest.(check int) "LIFO reuse within the class" p (Allocator.malloc heap 90);
  Alcotest.(check int) "malloc(0)" 0 (Allocator.malloc heap 0);
  Alcotest.(check int) "huge fails" 0 (Allocator.malloc heap (1 lsl 31))

let test_segregated_double_free_always_aborts () =
  (* The grooming that bypasses glibc's fasttop check (drain the
     fastbins with a large malloc between the two frees) changes nothing
     here: slot state lives outside the guest arena and is authoritative. *)
  let heap, _ = new_heap_p Allocator.Segregated in
  let a = Allocator.malloc heap 64 in
  Allocator.free heap a;
  let _big = Allocator.malloc heap 512 in
  Alcotest.check_raises "double free still caught after grooming"
    (Allocator.Heap_abort "double free (segregated)")
    (fun () -> Allocator.free heap a)

let test_segregated_invalid_free_aborts () =
  let heap, _ = new_heap_p Allocator.Segregated in
  let a = Allocator.malloc heap 64 in
  Alcotest.check_raises "interior pointer"
    (Allocator.Heap_abort "free(): invalid pointer (segregated)")
    (fun () -> Allocator.free heap (a + 8));
  Alcotest.check_raises "wild pointer"
    (Allocator.Heap_abort "free(): invalid pointer (segregated)")
    (fun () -> Allocator.free heap 0x1234560);
  Allocator.free heap 0  (* free(NULL) stays a no-op *)

let test_segregated_free_writes_nothing () =
  (* Out-of-line metadata: freeing must not touch guest memory, so
     there is no fd/bk to poison. *)
  let heap, mem = new_heap_p Allocator.Segregated in
  let a = Allocator.malloc heap 64 in
  Image.write64 mem a 0xFEEDFACE;
  Image.write64 mem (a + 56) 0xCAFE;
  Allocator.free heap a;
  Alcotest.(check int) "payload head untouched" 0xFEEDFACE (Image.read64 mem a);
  Alcotest.(check int) "payload tail untouched" 0xCAFE (Image.read64 mem (a + 56))

let test_segregated_fd_corruption_is_inert () =
  (* The tcache_poisoning primitive that redirects glibc's malloc (see
     test_fastbin_fd_corruption_returns_forged_chunk) has no effect. *)
  let heap, mem = new_heap_p Allocator.Segregated in
  let a = Allocator.malloc heap 64 in
  Allocator.free heap a;
  let target = 0x665000 in
  Image.write64 mem a target;
  Alcotest.(check int) "first pop is the real slot" a (Allocator.malloc heap 64);
  Alcotest.(check bool) "no forged chunk ever surfaces" true
    (Allocator.malloc heap 64 <> target)

let test_allocation_events () =
  let heap, _ = new_heap () in
  let allocs = ref 0 and frees = ref 0 and failures = ref 0 in
  Allocator.set_event_handler heap (function
    | Allocator.Alloc _ -> incr allocs
    | Allocator.Free _ -> incr frees
    | Allocator.Alloc_failed _ -> incr failures);
  let p = Allocator.malloc heap 64 in
  Allocator.free heap p;
  ignore (Allocator.malloc heap 0);
  Alcotest.(check (list int)) "event counts" [ 1; 1; 1 ] [ !allocs; !frees; !failures ]

let test_find_allocation () =
  let heap, _ = new_heap () in
  let p = Allocator.malloc heap 100 in
  (match Allocator.find_allocation heap (p + 50) with
  | Some (base, size, _) ->
    Alcotest.(check int) "base" p base;
    Alcotest.(check int) "size" 100 size
  | None -> Alcotest.fail "interior address not found");
  Alcotest.(check bool) "miss outside" true (Allocator.find_allocation heap (p + 200) = None);
  Allocator.free heap p;
  Alcotest.(check bool) "freed chunk forgotten" true (Allocator.find_allocation heap p = None)

let test_msrs () =
  let msrs = Msrs.create ~max_entries:2 () in
  Msrs.register msrs ~kind:Msrs.Malloc ~entry:100 ~exit_:104;
  Alcotest.(check bool) "entry found" true (Msrs.lookup_entry msrs 100 <> None);
  Alcotest.(check bool) "exit found" true (Msrs.lookup_exit msrs 104 <> None);
  Alcotest.(check bool) "non-registered pc" true (Msrs.lookup_entry msrs 104 = None);
  Msrs.register msrs ~kind:Msrs.Free ~entry:200 ~exit_:204;
  Alcotest.check_raises "model-specific limit"
    (Invalid_argument "Msrs.register: model-specific limit on entry/exit points reached")
    (fun () -> Msrs.register msrs ~kind:Msrs.Calloc ~entry:300 ~exit_:304)

let test_extern_addresses () =
  List.iter
    (fun name ->
      match Layout.extern_of_addr (Layout.extern_addr name) with
      | Some (n, `Entry) -> Alcotest.(check string) "entry roundtrip" name n
      | _ -> Alcotest.fail "entry not recognized")
    Layout.externs;
  match Layout.extern_of_addr (Layout.extern_exit_addr "malloc") with
  | Some ("malloc", `Exit) -> ()
  | _ -> Alcotest.fail "exit not recognized"

let test_heap_profile () =
  let heap, _ = new_heap () in
  let profile = Chex86_os.Heap_profile.create ~interval_insns:10 heap in
  let a = Allocator.malloc heap 64 in
  let b = Allocator.malloc heap 64 in
  Chex86_os.Heap_profile.on_access profile a;
  Chex86_os.Heap_profile.on_access profile (a + 8);
  for _ = 1 to 10 do
    Chex86_os.Heap_profile.on_insn profile
  done;
  Chex86_os.Heap_profile.on_access profile b;
  for _ = 1 to 10 do
    Chex86_os.Heap_profile.on_insn profile
  done;
  Allocator.free heap b;
  let r = Chex86_os.Heap_profile.report profile in
  Alcotest.(check int) "total" 2 r.Chex86_os.Heap_profile.total_allocations;
  Alcotest.(check int) "max live" 2 r.Chex86_os.Heap_profile.max_live_allocations;
  Alcotest.(check (float 1e-9)) "avg in-use = 1 per interval" 1.
    r.Chex86_os.Heap_profile.avg_in_use_per_interval

let () =
  Alcotest.run "os"
    [
      ( "allocator",
        [
          Alcotest.test_case "malloc basics" `Quick test_malloc_basics;
          Alcotest.test_case "zero/negative" `Quick test_malloc_zero_and_negative;
          Alcotest.test_case "huge fails" `Quick test_malloc_huge_fails;
          Alcotest.test_case "adjacency" `Quick test_adjacent_allocations;
          Alcotest.test_case "first fit" `Quick test_first_fit_reuse;
          Alcotest.test_case "fastbin LIFO" `Quick test_fastbin_lifo;
          Alcotest.test_case "splitting" `Quick test_split_leaves_remainder;
          Alcotest.test_case "coalescing" `Quick test_backward_coalescing;
          Alcotest.test_case "calloc zeroes" `Quick test_calloc_zeroes;
          Alcotest.test_case "realloc preserves" `Quick test_realloc_preserves;
          QCheck_alcotest.to_alcotest (qcheck_invariants_for Allocator.Glibc);
          QCheck_alcotest.to_alcotest (qcheck_invariants_for Allocator.Segregated);
          QCheck_alcotest.to_alcotest (qcheck_roundtrip_for Allocator.Glibc);
          QCheck_alcotest.to_alcotest (qcheck_roundtrip_for Allocator.Segregated);
        ] );
      ( "segregated personality",
        [
          Alcotest.test_case "basics" `Quick test_segregated_basics;
          Alcotest.test_case "double free always aborts" `Quick
            test_segregated_double_free_always_aborts;
          Alcotest.test_case "invalid free aborts" `Quick
            test_segregated_invalid_free_aborts;
          Alcotest.test_case "free writes nothing" `Quick
            test_segregated_free_writes_nothing;
          Alcotest.test_case "fd corruption inert" `Quick
            test_segregated_fd_corruption_is_inert;
        ] );
      ( "integrity checks",
        [
          Alcotest.test_case "fasttop double free" `Quick test_fasttop_double_free_abort;
          Alcotest.test_case "!prev double free" `Quick test_prev_double_free_abort;
          Alcotest.test_case "invalid free" `Quick test_invalid_free_aborts;
          Alcotest.test_case "free(NULL)" `Quick test_free_null_is_noop;
          QCheck_alcotest.to_alcotest qcheck_safe_unlink_corruption;
        ] );
      ( "exploit primitives",
        [
          Alcotest.test_case "consolidation double free" `Quick
            test_consolidation_enables_fastbin_double_free;
          Alcotest.test_case "fastbin fd corruption" `Quick
            test_fastbin_fd_corruption_returns_forged_chunk;
          Alcotest.test_case "house of force" `Quick test_top_chunk_corruption_house_of_force;
        ] );
      ( "process",
        [
          Alcotest.test_case "allocation events" `Quick test_allocation_events;
          Alcotest.test_case "find_allocation" `Quick test_find_allocation;
          Alcotest.test_case "msrs" `Quick test_msrs;
          Alcotest.test_case "extern addresses" `Quick test_extern_addresses;
          Alcotest.test_case "heap profile" `Quick test_heap_profile;
        ] );
    ]
