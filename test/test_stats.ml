(* Tests for the statistics substrate: counters, histograms, the
   deterministic PRNG and the ASCII renderers. *)

open Chex86_stats

let test_counter_basics () =
  let g = Counter.create_group () in
  Alcotest.(check int) "absent counter reads 0" 0 (Counter.get g "x");
  Counter.incr g "x";
  Counter.incr ~by:4 g "x";
  Alcotest.(check int) "incr accumulates" 5 (Counter.get g "x");
  Counter.incr ~by:(-3) g "x";
  Alcotest.(check int) "negative delta republishes a total" 2 (Counter.get g "x");
  Counter.reset g;
  Alcotest.(check int) "reset zeroes" 0 (Counter.get g "x")

let test_counter_ratio () =
  let g = Counter.create_group () in
  Alcotest.(check (float 1e-9)) "empty ratio" 0. (Counter.ratio g ~num:"m" ~den:"h");
  Counter.incr ~by:3 g "m";
  Counter.incr ~by:9 g "h";
  Alcotest.(check (float 1e-9)) "miss ratio" 0.25 (Counter.ratio g ~num:"m" ~den:"h");
  Counter.incr ~by:4 g "total";
  Counter.incr ~by:1 g "part";
  Alcotest.(check (float 1e-9)) "fraction" 0.25 (Counter.fraction g ~num:"part" ~total:"total")

let test_counter_to_list_sorted () =
  let g = Counter.create_group () in
  Counter.incr g "zeta";
  Counter.incr g "alpha";
  Alcotest.(check (list string))
    "sorted names" [ "alpha"; "zeta" ]
    (List.map fst (Counter.to_list g))

let test_histogram_basics () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check int) "empty percentile" 0 (Histogram.percentile h 0.5);
  List.iter (Histogram.add h) [ 1; 2; 2; 3; 3; 3 ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  Alcotest.(check int) "total" 14 (Histogram.total h);
  Alcotest.(check int) "min" 1 (Histogram.min_value h);
  Alcotest.(check int) "max" 3 (Histogram.max_value h);
  Alcotest.(check int) "mode" 3 (Histogram.mode h);
  Alcotest.(check (float 1e-9)) "mean" (14. /. 6.) (Histogram.mean h);
  Alcotest.(check int) "median" 2 (Histogram.percentile h 0.5)

let test_histogram_weighted () =
  let h = Histogram.create () in
  Histogram.add ~weight:10 h 5;
  Histogram.add h 100;
  Alcotest.(check int) "weighted count" 11 (Histogram.count h);
  Alcotest.(check int) "p50 dominated by heavy bucket" 5 (Histogram.percentile h 0.5);
  Alcotest.(check int) "p100 reaches max" 100 (Histogram.percentile h 1.0)

(* Regression: a zero/negative weight used to corrupt count/sum/min/max
   silently; it must be rejected loudly now. *)
let test_histogram_weight_rejected () =
  let h = Histogram.create () in
  let raises w =
    match Histogram.add ~weight:w h 5 with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "weight 0 rejected" true (raises 0);
  Alcotest.(check bool) "weight -3 rejected" true (raises (-3));
  Alcotest.(check int) "histogram untouched by rejected adds" 0 (Histogram.count h);
  Alcotest.(check int) "max untouched" 0 (Histogram.max_value h)

(* Regression: percentile used to walk past max on q > 1 (returning
   whatever the bucket walk fell off to) and misbehave on NaN. *)
let test_histogram_percentile_clamped () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 2; 3 ];
  Alcotest.(check int) "q > 1 clamps to max" 3 (Histogram.percentile h 1.5);
  Alcotest.(check int) "q < 0 clamps to min" 1 (Histogram.percentile h (-0.5));
  Alcotest.(check int) "NaN q treated as 0" 1 (Histogram.percentile h Float.nan)

(* Regression: an empty histogram used to print n=0 with all-zero
   min/max/percentiles — indistinguishable from a real zero-valued
   distribution. *)
let test_histogram_empty_pp () =
  let h = Histogram.create () in
  Alcotest.(check string) "empty pp" "n=0 (empty)" (Format.asprintf "%a" Histogram.pp h);
  Histogram.add h 7;
  Alcotest.(check bool) "non-empty pp has stats" true
    (let s = Format.asprintf "%a" Histogram.pp h in
     String.length s > 0 && s <> "n=0 (empty)")

let qcheck_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles are monotone"
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range (-100) 100))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let p25 = Histogram.percentile h 0.25
      and p50 = Histogram.percentile h 0.5
      and p99 = Histogram.percentile h 0.99 in
      p25 <= p50 && p50 <= p99)

let qcheck_histogram_mean_bounded =
  QCheck.Test.make ~name:"histogram mean within min..max"
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range (-1000) 1000))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let mean = Histogram.mean h in
      float_of_int (Histogram.min_value h) -. 1e-9 <= mean
      && mean <= float_of_int (Histogram.max_value h) +. 1e-9)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let qcheck_rng_int_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 7 in
  let arr = Array.init 32 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 32 (fun i -> i)) sorted

let test_render_table () =
  let s = Render.table ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "longer"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + separator + 2 rows" 4 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check int) "aligned width" (String.length (List.hd lines)) (String.length l))
    lines

let test_render_bars () =
  let s = Render.bars [ ("x", 1.0); ("y", 2.0) ] in
  Alcotest.(check bool) "larger value has more hashes" true
    (let count line = String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 line in
     match String.split_on_char '\n' s with
     | [ a; b ] -> count b > count a
     | _ -> false)

let test_render_percent () =
  Alcotest.(check string) "percent format" "12.3%" (Render.percent 0.123)

(* Regression: a row shorter than the widest used to render short,
   leaving its cells misaligned under the separator; it must be padded
   with empty cells to the full column count. *)
let test_render_table_ragged () =
  let s =
    Render.table ~header:[ "a"; "b"; "c" ] [ [ "x" ]; [ "y"; "2" ]; [ "z"; "3"; "4" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + separator + 3 rows" 5 (List.length lines);
  let w = String.length (List.hd lines) in
  List.iter
    (fun l -> Alcotest.(check int) "ragged rows padded to full width" w (String.length l))
    lines

(* Regression: bare "-", "e", "+" placeholder cells used to pass the
   numeric heuristic and right-align; they are words, not numbers. *)
let test_render_table_placeholder_alignment () =
  let s = Render.table ~header:[ "name"; "val" ] [ [ "-"; "10" ]; [ "e"; "+" ] ] in
  (match String.split_on_char '\n' s with
  | _ :: _ :: row1 :: row2 :: _ ->
    Alcotest.(check char) "bare - left-aligns" '-' row1.[0];
    Alcotest.(check char) "bare e left-aligns" 'e' row2.[0];
    (* "10" is numeric: right-aligned, so the val column's last char. *)
    Alcotest.(check char) "numeric right-aligns" '0' row1.[String.length row1 - 1]
  | _ -> Alcotest.fail "unexpected table shape");
  let s2 = Render.table ~header:[ "n" ] [ [ "-12" ]; [ "1e9" ]; [ "+4" ] ] in
  (match String.split_on_char '\n' s2 with
  | _ :: _ :: rows ->
    List.iter
      (fun row ->
        Alcotest.(check bool)
          (Printf.sprintf "%S right-aligns (has digits)" row)
          true
          (String.length row = 3 && row.[String.length row - 1] <> ' '))
      rows
  | _ -> Alcotest.fail "unexpected table shape")

let () =
  Alcotest.run "stats"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "ratio" `Quick test_counter_ratio;
          Alcotest.test_case "to_list sorted" `Quick test_counter_to_list_sorted;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "weighted" `Quick test_histogram_weighted;
          Alcotest.test_case "weight <= 0 rejected" `Quick test_histogram_weight_rejected;
          Alcotest.test_case "percentile clamped" `Quick test_histogram_percentile_clamped;
          Alcotest.test_case "empty pp" `Quick test_histogram_empty_pp;
          QCheck_alcotest.to_alcotest qcheck_histogram_percentile_monotone;
          QCheck_alcotest.to_alcotest qcheck_histogram_mean_bounded;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed divergence" `Quick test_rng_distinct_seeds;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          QCheck_alcotest.to_alcotest qcheck_rng_int_bounds;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_render_table;
          Alcotest.test_case "table ragged rows" `Quick test_render_table_ragged;
          Alcotest.test_case "table placeholder alignment" `Quick
            test_render_table_placeholder_alignment;
          Alcotest.test_case "bars" `Quick test_render_bars;
          Alcotest.test_case "percent" `Quick test_render_percent;
        ] );
    ]
