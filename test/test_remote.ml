(* Tests for the process-isolated dispatch layer: remote sweeps must be
   bit-identical to a serial in-process run of the same kind function at
   any (workers, batch, transport) geometry — including runs where a
   worker is killed mid-chunk, a frame is dropped/corrupted/delayed in
   transit, or no worker can be started at all and the sweep degrades
   to the in-process pool.

   The baseline for every comparison is the selftest kind's body run
   through [Pool.map_stats_supervised_batched ~jobs:1]: the exact
   attempt/ctx path the worker uses, minus the transport. *)

module Pool = Chex86_harness.Pool
module Remote = Chex86_harness.Remote
module Faultinject = Chex86_harness.Faultinject
module Counter = Chex86_stats.Counter
module Histogram = Chex86_stats.Histogram

let with_plan plan f =
  Faultinject.arm plan;
  Fun.protect ~finally:Faultinject.disarm f

let selftest_fn =
  match Remote.find_kind Remote.selftest_kind with
  | Some fn -> fn
  | None -> Alcotest.fail "selftest kind not registered"

let tasks_n n = Array.init n (fun i -> Printf.sprintf "task-%d" i)
let arg_of _ = "8"

let serial_baseline ?retries ?task_timeout tasks =
  Pool.map_stats_supervised_batched ~jobs:1 ~batch_size:1 ?retries ?task_timeout
    ~key:Fun.id
    (fun key ctx -> selftest_fn ~key ~arg:(arg_of key) ctx)
    tasks

(* [pool.chunks] and the [remote.*] counters record dispatch/transport
   behaviour — the documented scheduling-dependent set; everything else
   must match bit for bit. *)
let comparable counters =
  Counter.to_list counters
  |> List.filter (fun (name, _) ->
         name <> "pool.chunks"
         && not (String.length name >= 7 && String.sub name 0 7 = "remote."))

let hists_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (na, ha) (nb, hb) ->
         na = nb
         && Histogram.snapshot_to_list (Histogram.snapshot ha)
            = Histogram.snapshot_to_list (Histogram.snapshot hb))
       a b

let check_matches_serial label (sstats : Pool.merged_stats)
    (rstats : Pool.merged_stats) sresults rresults =
  Alcotest.(check (array (result string reject)))
    (label ^ ": results") sresults rresults;
  Alcotest.(check (list (pair string int)))
    (label ^ ": merged counters")
    (comparable sstats.Pool.counters)
    (comparable rstats.Pool.counters);
  Alcotest.(check bool) (label ^ ": merged histograms") true
    (hists_equal sstats.Pool.histograms rstats.Pool.histograms)

let remote_results_as_opaque results =
  Array.map (fun r -> Result.map_error (fun _ -> ()) r) results

(* --- spawn-mode bit-identity ---------------------------------------------- *)

let test_remote_matches_serial () =
  let tasks = tasks_n 9 in
  let sresults, sstats, _ = serial_baseline tasks in
  let rresults, rstats, report =
    Remote.sweep ~spec:(Remote.Spawn 2) ~batch_size:2 ~kind:Remote.selftest_kind
      ~key:Fun.id ~arg:arg_of tasks
  in
  Alcotest.(check int) "no faults" 0 (List.length report.Pool.task_faults);
  Alcotest.(check int) "no losses" 0 report.Pool.worker_losses;
  Alcotest.(check int) "not degraded" 0
    (Counter.get rstats.Pool.counters "remote.degraded");
  Alcotest.(check int) "workers recorded" 2
    (Counter.get rstats.Pool.counters "remote.workers");
  check_matches_serial "spawn2/batch2" sstats rstats
    (Array.map (fun r -> Result.map_error (fun _ -> ()) r) sresults)
    (remote_results_as_opaque rresults)

(* Any geometry: workers in 1..3, batch in 1..5, always equal to serial. *)
let prop_geometry_invariance =
  QCheck.Test.make ~count:6 ~name:"remote sweep invariant under (workers, batch)"
    QCheck.(pair (int_range 1 3) (int_range 1 5))
    (fun (workers, batch) ->
      let tasks = tasks_n 7 in
      let sresults, sstats, _ = serial_baseline tasks in
      let rresults, rstats, report =
        Remote.sweep ~spec:(Remote.Spawn workers) ~batch_size:batch
          ~kind:Remote.selftest_kind ~key:Fun.id ~arg:arg_of tasks
      in
      (List.length report.Pool.task_faults) = 0
      && remote_results_as_opaque rresults
         = Array.map (fun r -> Result.map_error (fun _ -> ()) r) sresults
      && comparable rstats.Pool.counters = comparable sstats.Pool.counters
      && hists_equal sstats.Pool.histograms rstats.Pool.histograms)

(* --- worker loss ----------------------------------------------------------- *)

(* SIGKILL mid-chunk on the first dispatch: the lost worker's streamed
   results are kept, only the unfinished tasks are re-dispatched, the
   re-run uses attempt-0 seeds — so the final stats are byte-identical
   to a run with no kill at all.  Exactly one loss event is reported and
   no task ends up faulted. *)
let test_worker_kill_recovers_bit_identical () =
  let tasks = tasks_n 8 in
  let sresults, sstats, _ = serial_baseline tasks in
  let plan = Faultinject.of_list [ ("task-3", Faultinject.kill_worker ()) ] in
  let rresults, rstats, report =
    with_plan plan (fun () ->
        Remote.sweep ~spec:(Remote.Spawn 2) ~batch_size:4 ~kind:Remote.selftest_kind
          ~key:Fun.id ~arg:arg_of tasks)
  in
  Alcotest.(check int) "exactly one worker loss event" 1 report.Pool.worker_losses;
  Alcotest.(check int) "no task faulted" 0 (List.length report.Pool.task_faults);
  Alcotest.(check int) "no Worker_lost task" 0 report.Pool.worker_lost;
  Alcotest.(check bool) "tasks were re-dispatched" true
    (Counter.get rstats.Pool.counters "remote.redispatched_tasks" >= 1);
  check_matches_serial "after innocent kill" sstats rstats
    (Array.map (fun r -> Result.map_error (fun _ -> ()) r) sresults)
    (remote_results_as_opaque rresults)

(* A wedged task — spinning in native code, never reaching
   check_deadline — cannot be contained in-process.  Here the heartbeat
   deadline must SIGKILL the worker, and with a zero loss budget the
   task is faulted as Worker_lost while the rest of the sweep completes. *)
let test_wedged_worker_killed_at_heartbeat () =
  let tasks = [| "wedge-0"; "task-1"; "task-2" |] in
  let t0 = Pool.now () in
  let rresults, _rstats, report =
    Remote.sweep ~spec:(Remote.Spawn 1) ~batch_size:1 ~heartbeat:0.5
      ~task_loss_budget:0 ~kind:Remote.selftest_kind ~key:Fun.id ~arg:arg_of tasks
  in
  let elapsed = Pool.now () -. t0 in
  Alcotest.(check bool) "killed within the deadline (not wedged forever)" true
    (elapsed < 10.);
  (match rresults.(0) with
  | Error (Pool.Worker_lost _) -> ()
  | Error fault -> Alcotest.fail ("wrong fault: " ^ Pool.fault_to_string fault)
  | Ok _ -> Alcotest.fail "wedged task cannot succeed");
  Alcotest.(check int) "one Worker_lost task" 1 report.Pool.worker_lost;
  Array.iteri
    (fun i r -> if i > 0 then Alcotest.(check bool) "healthy task ok" true (Result.is_ok r))
    rresults

(* --- transport faults ------------------------------------------------------ *)

let transport_case directive label extra_checks =
  let tasks = tasks_n 6 in
  let sresults, sstats, _ = serial_baseline tasks in
  let plan = Faultinject.of_list [ ("task-0", directive) ] in
  let rresults, rstats, report =
    with_plan plan (fun () ->
        Remote.sweep ~spec:(Remote.Spawn 2) ~batch_size:3 ~heartbeat:0.5
          ~kind:Remote.selftest_kind ~key:Fun.id ~arg:arg_of tasks)
  in
  Alcotest.(check int) (label ^ ": no task faulted") 0 (List.length report.Pool.task_faults);
  check_matches_serial label sstats rstats
    (Array.map (fun r -> Result.map_error (fun _ -> ()) r) sresults)
    (remote_results_as_opaque rresults);
  extra_checks rstats report

let test_dropped_frame_recovered () =
  transport_case
    (Faultinject.drop_frame ())
    "drop_frame"
    (fun _rstats report ->
      Alcotest.(check int) "heartbeat killed the starved worker" 1
        report.Pool.worker_losses)

let test_corrupt_frame_rejected_and_resent () =
  transport_case
    (Faultinject.corrupt_frame ())
    "corrupt_frame"
    (fun rstats _report ->
      Alcotest.(check bool) "worker rejected the frame" true
        (Counter.get rstats.Pool.counters "remote.frame_errors" >= 1))

let test_delayed_frame_tolerated () =
  transport_case (Faultinject.delay_frame 0.2) "delay_frame" (fun _ _ -> ())

(* --- degradation ----------------------------------------------------------- *)

let test_degrades_without_worker_exe () =
  let tasks = tasks_n 6 in
  let sresults, sstats, _ = serial_baseline tasks in
  Unix.putenv "CHEX86_WORKER_EXE" "/nonexistent/chex86_worker.exe";
  let rresults, rstats, report =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "CHEX86_WORKER_EXE" "")
      (fun () ->
        Remote.sweep ~spec:(Remote.Spawn 2) ~batch_size:2 ~kind:Remote.selftest_kind
          ~key:Fun.id ~arg:arg_of tasks)
  in
  Alcotest.(check int) "degraded flag" 1
    (Counter.get rstats.Pool.counters "remote.degraded");
  Alcotest.(check int) "no faults" 0 (List.length report.Pool.task_faults);
  check_matches_serial "degraded" sstats rstats
    (Array.map (fun r -> Result.map_error (fun _ -> ()) r) sresults)
    (remote_results_as_opaque rresults)

(* --- TCP peers -------------------------------------------------------------- *)

let worker_exe_for_tests () =
  let dir = Filename.dirname Sys.executable_name in
  let candidate =
    Filename.concat dir (Filename.concat ".." (Filename.concat "bin" "chex86_worker.exe"))
  in
  if Sys.file_exists candidate then Some candidate else None

let wait_for_port port deadline =
  let rec go () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let ok =
      try
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if ok then true
    else if Pool.now () > deadline then false
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let test_tcp_loopback_peer () =
  match worker_exe_for_tests () with
  | None -> Alcotest.skip ()
  | Some exe ->
    let port = 7800 + (Unix.getpid () mod 500) in
    let pid =
      Unix.create_process exe
        [| exe; "--listen"; string_of_int port |]
        Unix.stdin Unix.stdout Unix.stderr
    in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      (fun () ->
        Alcotest.(check bool) "worker came up" true
          (wait_for_port port (Pool.now () +. 10.));
        let tasks = tasks_n 5 in
        let sresults, sstats, _ = serial_baseline tasks in
        let rresults, rstats, report =
          Remote.sweep
            ~spec:(Remote.Peers [ ("127.0.0.1", port) ])
            ~batch_size:2 ~kind:Remote.selftest_kind ~key:Fun.id ~arg:arg_of tasks
        in
        Alcotest.(check int) "no faults" 0 (List.length report.Pool.task_faults);
        Alcotest.(check int) "not degraded" 0
          (Counter.get rstats.Pool.counters "remote.degraded");
        check_matches_serial "tcp loopback" sstats rstats
          (Array.map (fun r -> Result.map_error (fun _ -> ()) r) sresults)
          (remote_results_as_opaque rresults))

(* A peer that accepts, serves, and DROPS: the listener process forks a
   fresh serving child per connection, so when the fault plan SIGKILLs
   the serving child mid-chunk the connection dies but the listener
   survives and accepts the supervisor's reconnect — the "worker host
   re-registered" scenario.  The supervisor must back off, reconnect,
   re-dispatch only the unfinished tasks at attempt 0 seeds, and end
   bit-identical to serial. *)
let spawn_flaky_listener port =
  let pid = Unix.fork () in
  if pid = 0 then begin
    (* Listener: one process per accepted connection, reaped as we go. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 8
     with Unix.Unix_error _ -> Unix._exit 1);
    let rec loop () =
      (try
         while fst (Unix.waitpid [ Unix.WNOHANG ] (-1)) > 0 do
           ()
         done
       with Unix.Unix_error _ -> ());
      match Unix.accept fd with
      | conn, _ ->
        (match Unix.fork () with
        | 0 ->
          Unix.close fd;
          (try Remote.Worker.serve ~input:conn ~output:conn
           with _ -> ());
          Unix._exit 0
        | _ -> Unix.close conn);
        loop ()
      | exception Unix.Unix_error _ -> Unix._exit 0
    in
    loop ()
  end
  else pid

let test_tcp_peer_drops_mid_chunk_then_reregisters () =
  let port = 7300 + (Unix.getpid () mod 400) in
  let pid = spawn_flaky_listener port in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    (fun () ->
      Alcotest.(check bool) "flaky peer came up" true
        (wait_for_port port (Pool.now () +. 10.));
      let tasks = tasks_n 8 in
      let sresults, sstats, _ = serial_baseline tasks in
      (* The plan ships to the serving child with the chunk; it kills
         itself mid-chunk on task-2's first attempt only. *)
      let plan = Faultinject.of_list [ ("task-2", Faultinject.kill_worker ()) ] in
      let rresults, rstats, report =
        with_plan plan (fun () ->
            Remote.sweep
              ~spec:(Remote.Peers [ ("127.0.0.1", port) ])
              ~batch_size:4 ~heartbeat:0.5 ~kind:Remote.selftest_kind ~key:Fun.id
              ~arg:arg_of tasks)
      in
      Alcotest.(check int) "exactly one connection loss" 1 report.Pool.worker_losses;
      Alcotest.(check int) "no task faulted" 0 (List.length report.Pool.task_faults);
      Alcotest.(check int) "not degraded" 0
        (Counter.get rstats.Pool.counters "remote.degraded");
      Alcotest.(check bool) "unfinished tasks re-dispatched" true
        (Counter.get rstats.Pool.counters "remote.redispatched_tasks" >= 1);
      check_matches_serial "flaky tcp peer" sstats rstats
        (Array.map (fun r -> Result.map_error (fun _ -> ()) r) sresults)
        (remote_results_as_opaque rresults))

(* --- knob validation --------------------------------------------------------- *)

(* Non-positive supervision knobs must be rejected loudly at the setter,
   not silently wedge a sweep (a 0 heartbeat would kill every worker
   instantly; a 0 task timeout would fault every task). *)
let test_rejects_nonpositive_heartbeat () =
  let saved = Remote.heartbeat () in
  Fun.protect
    ~finally:(fun () -> Remote.set_heartbeat saved)
    (fun () ->
      List.iter
        (fun bad ->
          match Remote.set_heartbeat bad with
          | () -> Alcotest.fail (Printf.sprintf "heartbeat %g accepted" bad)
          | exception Invalid_argument _ -> ())
        [ 0.; -1.; Float.neg_infinity; Float.nan ];
      match
        Remote.sweep ~heartbeat:0. ~kind:Remote.selftest_kind ~key:Fun.id
          ~arg:arg_of (tasks_n 2)
      with
      | _ -> Alcotest.fail "sweep ?heartbeat:0 accepted"
      | exception Invalid_argument _ -> ())

let test_rejects_nonpositive_task_timeout () =
  List.iter
    (fun bad ->
      match Pool.set_task_timeout (Some bad) with
      | () -> Alcotest.fail (Printf.sprintf "task timeout %g accepted" bad)
      | exception Invalid_argument _ -> ())
    [ 0.; -2.5 ]

(* --- end-to-end: security sweep through workers ----------------------------- *)

let test_security_sweep_remote_matches_local () =
  let subset = List.filteri (fun i _ -> i mod 97 = 0) Chex86_exploits.Exploits.all in
  Alcotest.(check bool) "subset non-trivial" true (List.length subset >= 5);
  let local, lstats, _ = Chex86_harness.Security.sweep_stats_supervised ~jobs:1 subset in
  Remote.set_spec (Remote.Spawn 2);
  let remote, rstats, report =
    Fun.protect
      ~finally:(fun () -> Remote.set_spec Remote.Off)
      (fun () -> Chex86_harness.Security.sweep_stats_supervised ~batch_size:2 subset)
  in
  Alcotest.(check int) "no faults" 0 (List.length report.Pool.task_faults);
  Alcotest.(check (list (pair string int)))
    "sweep counters identical"
    (comparable lstats.Pool.counters)
    (comparable rstats.Pool.counters);
  List.iter2
    (fun (le, lr) (re_, rr) ->
      Alcotest.(check string) "exploit order"
        le.Chex86_exploits.Exploit.name re_.Chex86_exploits.Exploit.name;
      match (lr, rr) with
      | Ok (l : Chex86_harness.Security.result), Ok r ->
        Alcotest.(check bool) "same blocked verdict" true
          (Chex86_harness.Security.blocked l = Chex86_harness.Security.blocked r);
        Alcotest.(check int) "same protected macro insns"
          l.Chex86_harness.Security.under_protection.Chex86_harness.Runner.macro_insns
          r.Chex86_harness.Security.under_protection.Chex86_harness.Runner.macro_insns
      | _ -> Alcotest.fail "unexpected fault in security sweep")
    local remote

let test_campaign_matrix_remote_matches_local () =
  (* Generated campaigns cross the wire by name only (the worker rebuilds
     them through [Exploits.find] / [Campaign.of_name]); the detection
     matrix — including its JSON — must come back byte-identical to the
     in-process run, multi-core race campaigns included. *)
  let module Campaign = Chex86_exploits.Campaign in
  let module Security = Chex86_harness.Security in
  let corpus = Campaign.corpus ~seed:11 ~per_family:1 in
  let configs = [ Chex86_harness.Runner.insecure; Chex86_harness.Runner.prediction ] in
  let json matrix =
    Chex86_stats.Json.to_string (Security.matrix_to_json matrix)
  in
  let local = json (Security.campaign_matrix ~jobs:1 ~configs corpus) in
  Remote.set_spec (Remote.Spawn 2);
  let remote =
    Fun.protect
      ~finally:(fun () -> Remote.set_spec Remote.Off)
      (fun () -> json (Security.campaign_matrix ~batch_size:3 ~configs corpus))
  in
  Alcotest.(check string) "matrix JSON byte-identical through workers" local remote

let () =
  Alcotest.run "remote"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "spawn matches serial" `Quick test_remote_matches_serial;
          QCheck_alcotest.to_alcotest prop_geometry_invariance;
        ] );
      ( "worker loss",
        [
          Alcotest.test_case "mid-chunk kill recovers" `Quick
            test_worker_kill_recovers_bit_identical;
          Alcotest.test_case "wedged worker killed at heartbeat" `Quick
            test_wedged_worker_killed_at_heartbeat;
        ] );
      ( "transport",
        [
          Alcotest.test_case "dropped frame" `Quick test_dropped_frame_recovered;
          Alcotest.test_case "corrupt frame" `Quick test_corrupt_frame_rejected_and_resent;
          Alcotest.test_case "delayed frame" `Quick test_delayed_frame_tolerated;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "no worker exe" `Quick test_degrades_without_worker_exe;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "loopback peer" `Quick test_tcp_loopback_peer;
          Alcotest.test_case "peer drops mid-chunk then re-registers" `Quick
            test_tcp_peer_drops_mid_chunk_then_reregisters;
        ] );
      ( "validation",
        [
          Alcotest.test_case "rejects non-positive heartbeat" `Quick
            test_rejects_nonpositive_heartbeat;
          Alcotest.test_case "rejects non-positive task timeout" `Quick
            test_rejects_nonpositive_task_timeout;
        ] );
      ( "security",
        [
          Alcotest.test_case "remote sweep matches local" `Quick
            test_security_sweep_remote_matches_local;
          Alcotest.test_case "campaign matrix remote matches local" `Quick
            test_campaign_matrix_remote_matches_local;
        ] );
    ]
