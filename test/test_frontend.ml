(* Tests for the trace-driven frontend: cachetrace/uoptrace parsing
   (round-trips and line-numbered rejection), golden per-preset
   cachetrace summaries on the deterministic generator (which doubles
   as the "presets are measurably different" acceptance check), uoptrace
   replay sanity, and preset separation of result-store keys. *)

module Cachetrace = Chex86_frontend.Cachetrace
module Uoptrace = Chex86_frontend.Uoptrace
module Gen = Chex86_frontend.Gen
module Preset = Chex86_machine.Preset
module Hierarchy = Chex86_mem.Hierarchy
module Counter = Chex86_stats.Counter
module Runner = Chex86_harness.Runner
module W = Chex86_workloads.Workloads

let reader_of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  fun () ->
    match !lines with
    | [] -> None
    | l :: tl ->
      lines := tl;
      Some l

(* Every test leaves the process-wide preset where it found it; the
   suite shares the process with other binaries' assumptions. *)
let with_preset p f =
  let saved = Preset.current () in
  Preset.set p;
  Fun.protect ~finally:(fun () -> Preset.set saved) f

(* --- cachetrace parsing --------------------------------------------------- *)

let test_cachetrace_parse_line () =
  (match Cachetrace.parse_line "R 0x1000" with
  | Ok (Some { Cachetrace.write = false; addr = 0x1000 }) -> ()
  | _ -> Alcotest.fail "R 0x1000 should parse");
  (match Cachetrace.parse_line "w 0xdeadbeef" with
  | Ok (Some { Cachetrace.write = true; addr = 0xdeadbeef }) -> ()
  | _ -> Alcotest.fail "lowercase w should parse");
  (match Cachetrace.parse_line "" with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank line should be skipped");
  (match Cachetrace.parse_line "# comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment should be skipped");
  List.iter
    (fun bad ->
      match Cachetrace.parse_line bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should be rejected" bad)
    [ "X 0x1000"; "R"; "R 0x1000 extra"; "R zz"; "R -0x10" ]

let run_cachetrace preset text =
  with_preset preset (fun () ->
      let counters = Counter.create_group () in
      let hier = Hierarchy.create ~config:preset.Preset.hier counters in
      Cachetrace.run ~counters hier (reader_of_string text))

let test_cachetrace_error_line_numbers () =
  match run_cachetrace Preset.skylake "R 0x10\n# fine\nR oops\n" with
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names line 3" msg)
      true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 3:")
  | Ok _ -> Alcotest.fail "malformed line should fail the run"

(* --- golden per-preset cachetrace summaries ------------------------------- *)

(* Pinned against the deterministic generator (seed 1): any change to
   cache geometry, replacement policy, latency accounting or writeback
   accounting shows up as a diff here.  The three presets must also be
   pairwise distinguishable on the same trace (ISSUE acceptance). *)
let golden_summaries =
  [
    ( "skylake",
      Preset.skylake,
      {
        Cachetrace.accesses = 5000;
        reads = 4000;
        writes = 1000;
        l1_hits = 2220;
        l2_hits = 270;
        misses = 2510;
        total_latency = 523680;
        mem_bytes = 190912;
        writeback_bytes = 30272;
      } );
    ( "nehalem",
      Preset.nehalem,
      {
        Cachetrace.accesses = 5000;
        reads = 4000;
        writes = 1000;
        l1_hits = 2227;
        l2_hits = 263;
        misses = 2510;
        total_latency = 632828;
        mem_bytes = 190912;
        writeback_bytes = 30272;
      } );
    ( "tiny",
      Preset.tiny,
      {
        Cachetrace.accesses = 5000;
        reads = 4000;
        writes = 1000;
        l1_hits = 1628;
        l2_hits = 376;
        misses = 2996;
        total_latency = 514884;
        mem_bytes = 246848;
        writeback_bytes = 55104;
      } );
  ]

let check_summary name (expected : Cachetrace.summary) (got : Cachetrace.summary) =
  let chk field e g = Alcotest.(check int) (name ^ ": " ^ field) e g in
  chk "accesses" expected.Cachetrace.accesses got.Cachetrace.accesses;
  chk "reads" expected.reads got.reads;
  chk "writes" expected.writes got.writes;
  chk "l1_hits" expected.l1_hits got.l1_hits;
  chk "l2_hits" expected.l2_hits got.l2_hits;
  chk "misses" expected.misses got.misses;
  chk "total_latency" expected.total_latency got.total_latency;
  chk "mem_bytes" expected.mem_bytes got.mem_bytes;
  chk "writeback_bytes" expected.writeback_bytes got.writeback_bytes

let test_cachetrace_golden_per_preset () =
  let trace = Gen.cachetrace ~seed:1 ~n:5000 () in
  let summaries =
    List.map
      (fun (name, preset, expected) ->
        match run_cachetrace preset trace with
        | Error msg -> Alcotest.failf "%s: generated trace rejected: %s" name msg
        | Ok s ->
          if Sys.getenv_opt "CHEX86_FRONTEND_DUMP" <> None then
            Printf.printf
              "%s: l1_hits=%d l2_hits=%d misses=%d total_latency=%d mem_bytes=%d \
               writeback_bytes=%d\n"
              name s.Cachetrace.l1_hits s.Cachetrace.l2_hits s.Cachetrace.misses
              s.Cachetrace.total_latency s.Cachetrace.mem_bytes
              s.Cachetrace.writeback_bytes
          else check_summary name expected s;
          (name, s))
      golden_summaries
  in
  (* The acceptance criterion: at least three presets produce measurably
     different miss/latency summaries on the same trace. *)
  let fingerprint (_, (s : Cachetrace.summary)) =
    (Cachetrace.miss_rate s, Cachetrace.avg_latency s)
  in
  let rec pairwise_distinct = function
    | [] -> true
    | x :: rest ->
      List.for_all (fun y -> fingerprint x <> fingerprint y) rest
      && pairwise_distinct rest
  in
  Alcotest.(check bool)
    "three presets are pairwise distinguishable on the same trace" true
    (pairwise_distinct summaries)

(* --- uoptrace round-trip and rejection ------------------------------------ *)

let record_gen =
  let open QCheck.Gen in
  let pc = map (fun x -> x * 4) (int_range 0 1_000_000) in
  let addr = map (fun x -> x * 8) (int_range 0 10_000_000) in
  oneof
    [
      map2 (fun pc addr -> Uoptrace.load ~pc ~addr ~width:8) pc addr;
      map2 (fun pc addr -> Uoptrace.store ~pc ~addr ~width:4) pc addr;
      map (fun pc -> Uoptrace.alu ~pc) pc;
      map3
        (fun pc taken target -> Uoptrace.branch ~pc ~taken ~target)
        pc bool
        (map (fun x -> x * 4) (int_range 0 1_000_000));
      map (fun pc -> Uoptrace.nop ~pc) pc;
    ]

let qcheck_uoptrace_roundtrip =
  QCheck.Test.make ~name:"uoptrace writer/parser round-trip" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 50) record_gen))
    (fun records ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf Uoptrace.header;
      Buffer.add_char buf '\n';
      List.iter
        (fun r ->
          Buffer.add_string buf (Uoptrace.to_line r);
          Buffer.add_char buf '\n')
        records;
      match Uoptrace.read (reader_of_string (Buffer.contents buf)) with
      | Ok parsed -> parsed = records
      | Error _ -> false)

let test_uoptrace_rejects () =
  (match Uoptrace.read (reader_of_string "not json\n") with
  | Error msg -> Alcotest.(check bool) "bad header names line 1" true
                   (String.sub msg 0 7 = "line 1:")
  | Ok _ -> Alcotest.fail "bad header should be rejected");
  let with_header body = Uoptrace.header ^ "\n" ^ body in
  List.iter
    (fun (body, line) ->
      match Uoptrace.read (reader_of_string (with_header body)) with
      | Error msg ->
        let prefix = Printf.sprintf "line %d:" line in
        Alcotest.(check bool)
          (Printf.sprintf "%S rejected at %s (%s)" body prefix msg)
          true
          (String.length msg >= String.length prefix
          && String.sub msg 0 (String.length prefix) = prefix)
      | Ok _ -> Alcotest.failf "%S should be rejected" body)
    [
      ({|{"pc":4,"op":"load","addr":8}|}, 2);
      ({|{"pc":4,"op":"load","addr":8,"width":3}|}, 2);
      ({|{"op":"nop"}|}, 2);
      ({|{"pc":4,"op":"teleport"}|}, 2);
      ({|{"pc":4,"op":"branch","taken":true}|}, 2);
      ({|{"pc":4,"op":"nop"}|} ^ "\n# ok\n" ^ {|{"pc":-1,"op":"nop"}|}, 4);
    ]

let test_uoptrace_replay_counts () =
  with_preset Preset.skylake (fun () ->
      let counters = Counter.create_group () in
      let preset = Preset.current () in
      let hier = Hierarchy.create ~config:preset.Preset.hier counters in
      let pipeline =
        Chex86_machine.Pipeline.create ~config:preset.Preset.core hier counters
      in
      let records = Gen.uoptrace ~seed:7 ~n:500 () in
      let seen = ref 0 in
      Uoptrace.replay ~observe:(fun ~seq:_ _ ~cycles:_ -> incr seen) ~pipeline records;
      Alcotest.(check int) "observe sees every record" 500 !seen;
      Alcotest.(check bool) "pipeline accumulated cycles" true
        (Chex86_machine.Pipeline.cycles pipeline > 0))

(* --- store-key separation ------------------------------------------------- *)

let store_dir = "_test_frontend_store"

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let test_preset_separates_store_keys () =
  let w = W.find "swaptions" in
  let key_under p =
    with_preset p (fun () -> Runner.job_key (Runner.job ~scale:1 Runner.insecure w))
  in
  let k_sky = key_under Preset.skylake and k_neh = key_under Preset.nehalem in
  Alcotest.(check bool) "job keys differ across presets" true (k_sky <> k_neh);
  (* Same workload under two presets must produce two store entries and
     never serve one preset's result to the other. *)
  Runner.reset_for_tests ();
  rm_rf store_dir;
  Runner.Store.configure ~dir:store_dir;
  Fun.protect
    ~finally:(fun () ->
      Runner.Store.disable ();
      rm_rf store_dir;
      Runner.reset_for_tests ())
    (fun () ->
      let run_under p =
        with_preset p (fun () -> Runner.run_workload ~scale:1 Runner.insecure w)
      in
      let a = run_under Preset.skylake in
      let b = run_under Preset.tiny in
      let s = Runner.Store.stats () in
      Alcotest.(check int) "two store writes, one per preset" 2 s.Runner.Store.writes;
      Alcotest.(check int) "no false cross-preset hit" 0 s.Runner.Store.hits;
      Alcotest.(check bool) "presets simulate differently" true
        (a.Runner.cycles <> b.Runner.cycles))

let () =
  Alcotest.run "frontend"
    [
      ( "cachetrace",
        [
          Alcotest.test_case "parse_line" `Quick test_cachetrace_parse_line;
          Alcotest.test_case "error line numbers" `Quick
            test_cachetrace_error_line_numbers;
          Alcotest.test_case "golden per preset" `Quick
            test_cachetrace_golden_per_preset;
        ] );
      ( "uoptrace",
        [
          QCheck_alcotest.to_alcotest qcheck_uoptrace_roundtrip;
          Alcotest.test_case "malformed rejection" `Quick test_uoptrace_rejects;
          Alcotest.test_case "replay counts" `Quick test_uoptrace_replay_counts;
        ] );
      ( "presets",
        [
          Alcotest.test_case "store-key separation" `Quick
            test_preset_separates_store_keys;
        ] );
    ]
