(* Tests for the memory substrate: sparse image, caches (incl. the
   victim cache and hashed indexing), TLB alias-hosting bits, and the
   hierarchy's latency/bandwidth accounting. *)

module Image = Chex86_mem.Image
module Cache = Chex86_mem.Cache
module Tlb = Chex86_mem.Tlb
module Hierarchy = Chex86_mem.Hierarchy
module Counter = Chex86_stats.Counter

let test_image_roundtrip () =
  let m = Image.create () in
  Image.write64 m 0x1000 0x1122334455667788;
  Alcotest.(check int) "64-bit" 0x1122334455667788 (Image.read64 m 0x1000);
  Alcotest.(check int) "little-endian low byte" 0x88 (Image.read_byte m 0x1000);
  Alcotest.(check int) "little-endian byte 2" 0x66 (Image.read_byte m 0x1002);
  Alcotest.(check int) "32-bit sub-read" 0x55667788 (Image.read m 0x1000 4)

let test_image_page_crossing () =
  let m = Image.create () in
  let addr = 0x1FFC (* 4 bytes before a page boundary *) in
  Image.write m addr 8 0x0102030405060708;
  Alcotest.(check int) "page-crossing roundtrip" 0x0102030405060708 (Image.read m addr 8)

let test_image_untouched_zero () =
  let m = Image.create () in
  Alcotest.(check int) "untouched memory reads zero" 0 (Image.read64 m 0xDEAD00);
  Alcotest.(check int) "reads do not allocate" 0 (Image.resident_pages m)

let test_image_resident () =
  let m = Image.create () in
  Image.write_byte m 0 1;
  Image.write_byte m 5000 1;
  Image.write_byte m 5001 1;
  Alcotest.(check int) "two pages touched" 2 (Image.resident_pages m);
  Alcotest.(check int) "bytes" (2 * 4096) (Image.resident_bytes m)

let qcheck_image_masked_roundtrip =
  QCheck.Test.make ~name:"n-byte write/read roundtrip"
    QCheck.(triple (int_range 0 100000) (int_range 1 8) (int_bound max_int))
    (fun (addr, n, v) ->
      let m = Image.create () in
      Image.write m addr n v;
      let mask = if n = 8 then -1 else (1 lsl (8 * n)) - 1 in
      Image.read m addr n = v land mask)

let qcheck_image_float_roundtrip =
  QCheck.Test.make ~name:"float write/read is bit-exact" QCheck.float (fun f ->
      let m = Image.create () in
      Image.write_float m 0x2000 f;
      let back = Image.read_float m 0x2000 in
      Int64.bits_of_float back = Int64.bits_of_float f)

let test_zero_range () =
  let m = Image.create () in
  Image.write64 m 0x100 (-1);
  Image.zero_range m 0x100 8;
  Alcotest.(check int) "zeroed" 0 (Image.read64 m 0x100)

let new_cache ?victim ?hash_index ~sets ~ways () =
  let g = Counter.create_group () in
  (Cache.create ?victim ?hash_index ~name:"c" ~sets ~ways ~line_bytes:64 g, g)

let test_cache_hit_after_miss () =
  let c, _ = new_cache ~sets:16 ~ways:2 () in
  Alcotest.(check bool) "first access misses" false (Cache.access c ~write:false 0x1000);
  Alcotest.(check bool) "second access hits" true (Cache.access c ~write:false 0x1000);
  Alcotest.(check bool) "same line hits" true (Cache.access c ~write:false 0x103F)

let test_cache_lru_eviction () =
  let c, _ = new_cache ~sets:1 ~ways:2 () in
  ignore (Cache.access c ~write:false 0x0000);
  ignore (Cache.access c ~write:false 0x1000);
  ignore (Cache.access c ~write:false 0x0000);  (* touch A: B becomes LRU *)
  ignore (Cache.access c ~write:false 0x2000);  (* evicts B *)
  Alcotest.(check bool) "A survives" true (Cache.access c ~write:false 0x0000);
  Alcotest.(check bool) "B evicted" false (Cache.access c ~write:false 0x1000)

let test_cache_victim_recovery () =
  let g = Counter.create_group () in
  let victim = Cache.create ~name:"v" ~sets:1 ~ways:4 ~line_bytes:64 g in
  let c = Cache.create ~victim ~name:"c" ~sets:1 ~ways:1 ~line_bytes:64 g in
  ignore (Cache.access c ~write:false 0x0000);
  ignore (Cache.access c ~write:false 0x1000);  (* evicts A into the victim *)
  Alcotest.(check bool) "A recovered from victim" true (Cache.access c ~write:false 0x0000);
  Alcotest.(check int) "victim hit counted" 1 (Counter.get g "c.victim_hit")

(* Regression for the evicted-address reconstruction bug: under hashed
   indexing the set index is an XOR fold of the block number, so
   re-assembling an evicted line's address as tag|set (the old scheme)
   handed the victim cache the wrong block.  Lines now carry full block
   numbers, so a block evicted from a hash-indexed cache must be
   recoverable by the exact address that installed it. *)
let test_cache_victim_recovery_hashed_index () =
  let g = Counter.create_group () in
  let victim = Cache.create ~name:"v" ~sets:1 ~ways:4 ~line_bytes:64 g in
  let c = Cache.create ~victim ~hash_index:true ~name:"c" ~sets:16 ~ways:1 ~line_bytes:64 g in
  (* Blocks 0x00 and 0x11 both hash to set 0 (0x11 xor 0x11>>4 = 0x10),
     but their low index bits differ — tag|set reassembly would turn the
     evicted block 0x00 into 0x10. *)
  let a = 0x00 lsl 6 and b = 0x11 lsl 6 in
  ignore (Cache.access c ~write:false a);
  ignore (Cache.access c ~write:false b);  (* evicts [a]'s block into the victim *)
  Alcotest.(check bool) "hashed-evicted block recovered" true (Cache.access c ~write:false a);
  Alcotest.(check int) "victim hit counted" 1 (Counter.get g "c.victim_hit")

(* Regression for the victim-duplication bug: a victim hit swapped the
   block back into the main array but left the victim's copy valid, so
   the block lived in both arrays and later spills stacked duplicates in
   the victim set, silently shrinking its capacity.  After A round-trips
   main -> victim -> main twice, the 2-way victim must still hold both
   distinct casualties. *)
let test_cache_victim_no_duplicates () =
  let g = Counter.create_group () in
  let victim = Cache.create ~name:"v" ~sets:1 ~ways:2 ~line_bytes:64 g in
  let c = Cache.create ~victim ~name:"c" ~sets:1 ~ways:1 ~line_bytes:64 g in
  let a = 0x0000 and b = 0x1000 and d = 0x2000 in
  ignore (Cache.access c ~write:false a);  (* main=[A] *)
  ignore (Cache.access c ~write:false b);  (* main=[B] victim=[A] *)
  ignore (Cache.access c ~write:false a);  (* swap back; victim=[B] *)
  ignore (Cache.access c ~write:false b);  (* swap back; victim=[A] *)
  ignore (Cache.access c ~write:false d);  (* main=[D] victim=[A;B] *)
  Alcotest.(check bool) "A still in victim" true (Cache.access c ~write:false a);
  Alcotest.(check int) "victim hits" 3 (Counter.get g "c.victim_hit")

let test_cache_rejects_bad_geometry () =
  let g = Counter.create_group () in
  let reject msg err f = Alcotest.check_raises msg (Invalid_argument err) (fun () -> ignore (f ())) in
  List.iter
    (fun sets ->
      reject
        (Printf.sprintf "sets=%d rejected" sets)
        "Cache.create: sets not a power of 2"
        (fun () -> Cache.create ~name:"c" ~sets ~ways:2 ~line_bytes:64 g))
    [ 0; 3; 6; 100 ];
  List.iter
    (fun line_bytes ->
      reject
        (Printf.sprintf "line_bytes=%d rejected" line_bytes)
        "Cache.create: line_bytes not a power of 2"
        (fun () -> Cache.create ~name:"c" ~sets:16 ~ways:2 ~line_bytes g))
    [ 0; 48; 100 ];
  reject "ways=0 rejected" "Cache.create: ways must be >= 1" (fun () ->
      Cache.create ~name:"c" ~sets:16 ~ways:0 ~line_bytes:64 g);
  reject "Tree-PLRU non-pow2 ways rejected"
    "Cache.create: Tree-PLRU needs a power-of-2 way count" (fun () ->
      Cache.create ~policy:Cache.Tree_plru ~name:"c" ~sets:16 ~ways:3 ~line_bytes:64 g)

let test_cache_tree_plru_protects_touched () =
  let g = Counter.create_group () in
  let c = Cache.create ~policy:Cache.Tree_plru ~name:"p" ~sets:1 ~ways:4 ~line_bytes:64 g in
  let blk i = i * 0x1000 in
  for i = 0 to 3 do
    ignore (Cache.access c ~write:false (blk i))
  done;
  ignore (Cache.access c ~write:false (blk 0));  (* tree points away from way 0 *)
  ignore (Cache.access c ~write:false (blk 4));  (* PLRU victim is way 2 *)
  Alcotest.(check bool) "touched way survives" true (Cache.access c ~write:false (blk 0));
  Alcotest.(check bool) "PLRU victim was evicted" false (Cache.access c ~write:false (blk 2))

let test_cache_mru_evicts_most_recent () =
  let g = Counter.create_group () in
  let c = Cache.create ~policy:Cache.Mru ~name:"m" ~sets:1 ~ways:2 ~line_bytes:64 g in
  ignore (Cache.access c ~write:false 0x0000);
  ignore (Cache.access c ~write:false 0x1000);
  ignore (Cache.access c ~write:false 0x0000);  (* A is now MRU *)
  ignore (Cache.access c ~write:false 0x2000);  (* MRU evicts A, not B *)
  Alcotest.(check bool) "LRU block survives under MRU" true (Cache.access c ~write:false 0x1000);
  Alcotest.(check bool) "MRU block evicted" false (Cache.access c ~write:false 0x0000)

let test_cache_invalidate () =
  let c, _ = new_cache ~sets:16 ~ways:2 () in
  ignore (Cache.access c ~write:false 0x4000);
  Cache.invalidate c 0x4000;
  Alcotest.(check bool) "invalidated line misses" false (Cache.access c ~write:false 0x4000)

let test_cache_hashed_index_spreads () =
  (* 32-byte-strided granule stream that would alias into few sets under
     modulo indexing: hashed indexing must retain most of it. *)
  let g = Counter.create_group () in
  let c = Cache.create ~hash_index:true ~name:"h" ~sets:128 ~ways:2 ~line_bytes:8 g in
  for _ = 1 to 5 do
    for i = 0 to 99 do
      ignore (Cache.access c ~write:false (0x10000000 + (i * 32)))
    done
  done;
  let hits = Counter.get g "h.hit" in
  Alcotest.(check bool) (Printf.sprintf "mostly hits (%d)" hits) true (hits > 350)

let test_tlb_alias_bits () =
  let g = Counter.create_group () in
  let tlb = Tlb.create ~name:"tlb" ~sets:4 ~ways:2 g in
  let addr = 0x123456 in
  Alcotest.(check bool) "fresh page not hosting" false (snd (Tlb.lookup tlb addr));
  Tlb.set_alias_hosting tlb addr;
  Alcotest.(check bool) "page-table bit set" true (Tlb.page_alias_bit tlb (addr lsr 12));
  Alcotest.(check bool) "cached entry refreshed" true (snd (Tlb.lookup tlb addr));
  Alcotest.(check int) "one hosting page" 1 (Tlb.alias_hosting_pages tlb)

let test_tlb_hit_miss () =
  let g = Counter.create_group () in
  let tlb = Tlb.create ~name:"tlb" ~sets:4 ~ways:2 g in
  Alcotest.(check bool) "first lookup misses" false (fst (Tlb.lookup tlb 0x5000));
  Alcotest.(check bool) "second lookup hits" true (fst (Tlb.lookup tlb 0x5abc))

let test_tlb_rejects_non_pow2_sets () =
  (* Set indexing masks with [sets - 1]; a non-power-of-two count would
     silently alias most of the index space (same guard as Cache.create). *)
  let g = Counter.create_group () in
  List.iter
    (fun sets ->
      Alcotest.check_raises
        (Printf.sprintf "sets=%d rejected" sets)
        (Invalid_argument "Tlb.create: sets not a power of 2")
        (fun () -> ignore (Tlb.create ~name:"tlb" ~sets ~ways:2 g)))
    [ 0; 3; 6; 100 ]

let test_hierarchy_latencies () =
  let g = Counter.create_group () in
  let h = Hierarchy.create g in
  let cfg = Hierarchy.default_config in
  let first = Hierarchy.access h ~kind:Data ~write:false 0x8000 in
  Alcotest.(check bool) "cold access pays DRAM + walk" true (first >= cfg.mem_latency);
  let second = Hierarchy.access h ~kind:Data ~write:false 0x8008 in
  Alcotest.(check int) "warm same-line access is an L1 hit" cfg.l1_latency second

let test_hierarchy_bandwidth () =
  let g = Counter.create_group () in
  let h = Hierarchy.create g in
  ignore (Hierarchy.access h ~kind:Data ~write:false 0x8000);
  Alcotest.(check int) "one line fetched" 64 (Hierarchy.mem_bytes h);
  ignore (Hierarchy.access h ~kind:Data ~write:false 0x8000);
  Alcotest.(check int) "hits add no traffic" 64 (Hierarchy.mem_bytes h);
  Hierarchy.mem_traffic h 16;
  Alcotest.(check int) "explicit traffic accounted" 80 (Hierarchy.mem_bytes h)

let test_hierarchy_writeback () =
  let g = Counter.create_group () in
  let h = Hierarchy.create g in
  ignore (Hierarchy.access h ~kind:Data ~write:true 0x8000);
  Alcotest.(check int) "line dirty after the store" 1 (Hierarchy.dirty_line_count h);
  (* Push the dirty line out of both levels with conflicting clean
     fills: the writeback is charged at eviction time, not deferred to
     a refetch that may never come. *)
  for i = 1 to 8192 do
    ignore (Hierarchy.access h ~kind:Data ~write:false (0x8000 + (i * 64 * 512)))
  done;
  Alcotest.(check int) "writeback charged on eviction" 64 (Hierarchy.writeback_bytes h);
  Alcotest.(check int) "dirty entry retired" 0 (Hierarchy.dirty_line_count h);
  let before = Hierarchy.mem_bytes h in
  ignore (Hierarchy.access h ~kind:Data ~write:false 0x8000);
  Alcotest.(check int) "refetch pays only the fill" (before + 64) (Hierarchy.mem_bytes h)

(* Regression for the dirty-line leak: a streaming-store workload whose
   lines are written once and never refetched must still pay writebacks,
   and [dirty_lines] must stay bounded by what the caches can hold
   instead of growing one entry per line touched. *)
let test_hierarchy_streaming_store () =
  let g = Counter.create_group () in
  let h = Hierarchy.create g in
  let cfg = Hierarchy.default_config in
  let lines = 20000 in
  for i = 0 to lines - 1 do
    ignore (Hierarchy.access h ~kind:Data ~write:true (i * cfg.line_bytes))
  done;
  let capacity = (cfg.l1_sets * cfg.l1_ways) + (cfg.l2_sets * cfg.l2_ways) in
  let dirty = Hierarchy.dirty_line_count h in
  Alcotest.(check bool)
    (Printf.sprintf "dirty lines bounded by capacity (%d <= %d)" dirty capacity)
    true (dirty <= capacity);
  let wb = Hierarchy.writeback_bytes h in
  Alcotest.(check bool)
    (Printf.sprintf "evicted stores wrote back (%d bytes)" wb)
    true
    (wb >= (lines - capacity) * cfg.line_bytes)

let () =
  Alcotest.run "mem"
    [
      ( "image",
        [
          Alcotest.test_case "roundtrip" `Quick test_image_roundtrip;
          Alcotest.test_case "page crossing" `Quick test_image_page_crossing;
          Alcotest.test_case "untouched reads zero" `Quick test_image_untouched_zero;
          Alcotest.test_case "resident accounting" `Quick test_image_resident;
          Alcotest.test_case "zero_range" `Quick test_zero_range;
          QCheck_alcotest.to_alcotest qcheck_image_masked_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_image_float_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "victim recovery" `Quick test_cache_victim_recovery;
          Alcotest.test_case "victim recovery (hashed index)" `Quick
            test_cache_victim_recovery_hashed_index;
          Alcotest.test_case "victim holds no duplicates" `Quick
            test_cache_victim_no_duplicates;
          Alcotest.test_case "rejects bad geometry" `Quick test_cache_rejects_bad_geometry;
          Alcotest.test_case "Tree-PLRU protects touched way" `Quick
            test_cache_tree_plru_protects_touched;
          Alcotest.test_case "MRU evicts most recent" `Quick
            test_cache_mru_evicts_most_recent;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "hashed index spreads strides" `Quick
            test_cache_hashed_index_spreads;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "alias-hosting bits" `Quick test_tlb_alias_bits;
          Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "rejects non-pow2 sets" `Quick test_tlb_rejects_non_pow2_sets;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "bandwidth" `Quick test_hierarchy_bandwidth;
          Alcotest.test_case "writeback" `Quick test_hierarchy_writeback;
          Alcotest.test_case "streaming store" `Quick test_hierarchy_streaming_store;
        ] );
    ]
