(* Tests for the CHEx86 core: capabilities and their shadow table/cache,
   the Table I rule database, the speculative pointer tracker (including
   transient-state squash recovery), the alias table/predictor, the
   Table II classifier, the hardware checker, and end-to-end detection
   semantics of the full monitor under every variant. *)

open Chex86_isa
open Chex86

(* ---------- capabilities ---------- *)

let test_capability_contains () =
  let cap = Capability.make ~pid:1 ~base:0x1000 ~size:64 () in
  Alcotest.(check bool) "first byte" true (Capability.contains cap ~ea:0x1000 ~width:1);
  Alcotest.(check bool) "last word" true (Capability.contains cap ~ea:0x1038 ~width:8);
  Alcotest.(check bool) "one past" false (Capability.contains cap ~ea:0x1040 ~width:1);
  Alcotest.(check bool) "straddles end" false (Capability.contains cap ~ea:0x103C ~width:8);
  Alcotest.(check bool) "below base" false (Capability.contains cap ~ea:0xFFF ~width:1)

let qcheck_capability_roundtrip =
  QCheck.Test.make ~name:"capability 128-bit encode/decode roundtrip"
    QCheck.(
      quad (int_range 1 10000) (int_range 0 0xFFFFFF) (int_range 0 0xFFFF)
        (triple bool bool bool))
    (fun (pid, base, size, (busy, valid, writable)) ->
      let cap = Capability.make ~writable ~pid ~base ~size () in
      cap.Capability.busy <- busy;
      cap.Capability.valid <- valid;
      let back = Capability.decode ~pid (Capability.encode cap) in
      back = cap)

let test_cap_table_lifecycle () =
  let t = Cap_table.create (Chex86_stats.Counter.create_group ()) in
  let cap = Cap_table.fresh t ~size:64 in
  Alcotest.(check bool) "busy after begin" true cap.Capability.busy;
  Alcotest.(check bool) "not yet valid" false cap.Capability.valid;
  Cap_table.finalize t cap.Capability.pid ~base:0x2000;
  Alcotest.(check bool) "valid after end" true cap.Capability.valid;
  Alcotest.(check bool) "busy cleared" false cap.Capability.busy;
  Cap_table.begin_free t cap.Capability.pid;
  Alcotest.(check bool) "busy during free" true cap.Capability.busy;
  Cap_table.end_free t cap.Capability.pid;
  Alcotest.(check bool) "freed capability retained" true
    (Cap_table.find t cap.Capability.pid <> None);
  Alcotest.(check bool) "freed capability invalid" false
    (match Cap_table.find t cap.Capability.pid with
    | Some c -> c.Capability.valid
    | None -> true)

let test_cap_table_null_malloc () =
  let t = Cap_table.create (Chex86_stats.Counter.create_group ()) in
  let cap = Cap_table.fresh t ~size:64 in
  Cap_table.finalize t cap.Capability.pid ~base:0;
  Alcotest.(check bool) "NULL base leaves capability invalid" false cap.Capability.valid

let test_cap_table_find_by_address () =
  let t = Cap_table.create (Chex86_stats.Counter.create_group ()) in
  let a = Cap_table.fresh t ~size:64 in
  Cap_table.finalize t a.Capability.pid ~base:0x1000;
  Cap_table.begin_free t a.Capability.pid;
  Cap_table.end_free t a.Capability.pid;
  let b = Cap_table.fresh t ~size:64 in
  Cap_table.finalize t b.Capability.pid ~base:0x1000;  (* recycled address *)
  (match Cap_table.find_by_address t 0x1010 with
  | Some cap ->
    Alcotest.(check int) "valid capability wins over freed" b.Capability.pid
      cap.Capability.pid
  | None -> Alcotest.fail "no capability found");
  Alcotest.(check bool) "untracked address" true (Cap_table.find_by_address t 0x9000 = None);
  Alcotest.(check int) "storage 16B/entry" (16 * 2) (Cap_table.storage_bytes t)

let test_cap_cache () =
  let g = Chex86_stats.Counter.create_group () in
  let c = Cap_cache.create ~entries:4 g in
  Alcotest.(check bool) "cold miss" false (Cap_cache.access c 1);
  Alcotest.(check bool) "hit" true (Cap_cache.access c 1);
  ignore (Cap_cache.access c 2);
  ignore (Cap_cache.access c 3);
  ignore (Cap_cache.access c 4);
  ignore (Cap_cache.access c 5);  (* evicts pid 1 (LRU) *)
  Alcotest.(check bool) "LRU evicted" false (Cap_cache.access c 1);
  Cap_cache.invalidate c 5;
  Alcotest.(check bool) "invalidated pid misses" false (Cap_cache.access c 5)

(* ---------- Table I rules ---------- *)

let action_of uop = Rules.action_for (Rules.create ()) uop

let test_rules_table1 () =
  let greg r = Uop.Greg r in
  let checks =
    [
      ("MOV reg-reg", Uop.Mov { dst = greg RAX; src = greg RBX }, Rules.Copy_src);
      ( "ADD reg-reg",
        Uop.Alu { op = Insn.Add; dst = greg RAX; src1 = greg RAX; src2 = Loc (greg RBX) },
        Rules.Nonzero_of_sources );
      ( "ADD reg-imm",
        Uop.Alu { op = Insn.Add; dst = greg RAX; src1 = greg RAX; src2 = Imm 4 },
        Rules.Copy_first );
      ( "SUB reg-reg",
        Uop.Alu { op = Insn.Sub; dst = greg RAX; src1 = greg RAX; src2 = Loc (greg RBX) },
        Rules.Copy_first );
      ( "AND reg-imm",
        Uop.Alu { op = Insn.And; dst = greg RAX; src1 = greg RAX; src2 = Imm 0xF0 },
        Rules.Copy_first );
      ( "AND reg-reg",
        Uop.Alu { op = Insn.And; dst = greg RAX; src1 = greg RAX; src2 = Loc (greg RBX) },
        Rules.Nonzero_of_sources );
      ("LEA", Uop.Lea { dst = greg RAX; mem = Insn.mem_of_reg RBX }, Rules.Copy_src);
      ( "LD",
        Uop.Load { dst = greg RAX; mem = Insn.mem_of_reg RBX; width = Insn.W64 },
        Rules.From_memory );
      ( "ST",
        Uop.Store { src = Loc (greg RAX); mem = Insn.mem_of_reg RBX; width = Insn.W64 },
        Rules.To_memory );
      ("MOVI", Uop.Limm { dst = greg RAX; imm = 0x7fff1000 }, Rules.Wild);
      ( "XOR clears (other ops)",
        Uop.Alu { op = Insn.Xor; dst = greg RAX; src1 = greg RAX; src2 = Loc (greg RBX) },
        Rules.Clear );
      ( "IMUL clears",
        Uop.Alu { op = Insn.Imul; dst = greg RAX; src1 = greg RAX; src2 = Imm 8 },
        Rules.Clear );
    ]
  in
  List.iter
    (fun (name, uop, expected) ->
      Alcotest.(check bool) name true (action_of uop = expected))
    checks

let test_rules_combine () =
  Alcotest.(check int) "zero takes other" 5 (Rules.combine_nonzero 0 5);
  Alcotest.(check int) "other takes zero" 5 (Rules.combine_nonzero 5 0);
  Alcotest.(check int) "real pid beats wild" 5 (Rules.combine_nonzero (-1) 5);
  Alcotest.(check int) "real pid beats wild (sym)" 5 (Rules.combine_nonzero 5 (-1));
  Alcotest.(check int) "both real: first" 3 (Rules.combine_nonzero 3 5)

let test_rules_extensible () =
  let rules = Rules.create () in
  let before =
    Rules.action_for rules
      (Uop.Alu { op = Insn.Xor; dst = Greg RAX; src1 = Greg RAX; src2 = Imm 1 })
  in
  Alcotest.(check bool) "xor initially clears" true (before = Rules.Clear);
  Rules.add_rule rules
    {
      Rules.uop = Rules.OTHER;
      mode = Rules.Reg_imm;
      action = Rules.Copy_first;
      example = "xori %rcx, %rbx, $imm";
      propagation = "PID(rcx) <- PID(rbx)";
      code_example = "ptr ^= 1; (field update)";
    };
  let after =
    Rules.action_for rules
      (Uop.Alu { op = Insn.Xor; dst = Greg RAX; src1 = Greg RAX; src2 = Imm 1 })
  in
  Alcotest.(check bool) "database update takes effect" true (after = Rules.Copy_first);
  Alcotest.(check int) "render has all rows" 13 (List.length (Rules.render_rows rules))

(* ---------- tracker ---------- *)

let test_tracker_basics () =
  let t = Tracker.create () in
  let rax = Uop.Greg RAX in
  Alcotest.(check int) "untracked reads 0" 0 (Tracker.current_pid t rax);
  let s1 = Tracker.next_seq t in
  Tracker.set_pid t rax ~seq:s1 ~pid:7;
  Alcotest.(check int) "transient visible" 7 (Tracker.current_pid t rax);
  Tracker.commit_upto t ~seq:s1;
  Alcotest.(check int) "committed" 7 (Tracker.current_pid t rax)

let test_tracker_squash_recovery () =
  (* Fig 2: on a squash, transient PIDs younger than the offending
     instruction are discarded; the committed PID survives. *)
  let t = Tracker.create () in
  let rax = Uop.Greg RAX in
  let s1 = Tracker.next_seq t in
  Tracker.set_pid t rax ~seq:s1 ~pid:7;
  Tracker.commit_upto t ~seq:s1;
  let s2 = Tracker.next_seq t in
  Tracker.set_pid t rax ~seq:s2 ~pid:8;
  let s3 = Tracker.next_seq t in
  Tracker.set_pid t rax ~seq:s3 ~pid:9;
  Alcotest.(check int) "youngest transient wins" 9 (Tracker.current_pid t rax);
  Tracker.squash_after t ~seq:s2;
  Alcotest.(check int) "squash drops younger transients" 8 (Tracker.current_pid t rax);
  Tracker.squash_after t ~seq:s1;
  Alcotest.(check int) "squash to committed" 7 (Tracker.current_pid t rax)

let test_tracker_xmm_untracked () =
  let t = Tracker.create () in
  Tracker.set_pid t (Uop.Xreg 3) ~seq:(Tracker.next_seq t) ~pid:9;
  Alcotest.(check int) "xmm never tracked" 0 (Tracker.current_pid t (Uop.Xreg 3))

let qcheck_tracker_squash_prefix =
  QCheck.Test.make ~name:"squash keeps exactly the <= seq prefix" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 20) (int_range 1 100)) (int_range 0 20))
    (fun (pids, cut) ->
      let t = Tracker.create () in
      let rax = Uop.Greg RAX in
      let seqs = List.map (fun pid ->
          let s = Tracker.next_seq t in
          Tracker.set_pid t rax ~seq:s ~pid;
          (s, pid))
          pids
      in
      let cut_seq = cut in
      Tracker.squash_after t ~seq:cut_seq;
      let expected =
        match List.rev (List.filter (fun (s, _) -> s <= cut_seq) seqs) with
        | (_, pid) :: _ -> pid
        | [] -> 0
      in
      Tracker.current_pid t rax = expected)

(* ---------- alias table / predictor ---------- *)

let test_alias_table () =
  let t = Alias_table.create (Chex86_stats.Counter.create_group ()) in
  Alias_table.set t 0x7fff1000 42;
  Alcotest.(check int) "roundtrip" 42 (Alias_table.find t 0x7fff1000);
  Alcotest.(check int) "same granule" 42 (Alias_table.find t 0x7fff1007);
  Alcotest.(check int) "neighbour granule empty" 0 (Alias_table.find t 0x7fff1008);
  Alias_table.set t 0x7fff1000 0;
  Alcotest.(check int) "cleared" 0 (Alias_table.find t 0x7fff1000);
  Alcotest.(check int) "entries counted" 0 (Alias_table.entries t)

let test_alias_table_walk_depth () =
  let t = Alias_table.create (Chex86_stats.Counter.create_group ()) in
  Alias_table.set t 0x1000 7;
  let pid, levels = Alias_table.get t 0x1000 in
  Alcotest.(check int) "hit pid" 7 pid;
  Alcotest.(check int) "full walk is 5 levels" 5 levels;
  let _, levels_miss = Alias_table.get t 0x7F00_0000_0000 in
  Alcotest.(check bool) "miss short-circuits" true (levels_miss < 5)

let qcheck_alias_table_roundtrip =
  QCheck.Test.make ~name:"alias table set/find roundtrip" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_range 0 0xFFFFFFF) (int_range 1 1000)))
    (fun entries ->
      let t = Alias_table.create (Chex86_stats.Counter.create_group ()) in
      (* last write per granule wins *)
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (addr, pid) ->
          let addr = addr land lnot 7 in
          Alias_table.set t addr pid;
          Hashtbl.replace tbl addr pid)
        entries;
      Hashtbl.fold (fun addr pid ok -> ok && Alias_table.find t addr = pid) tbl true)

let test_alias_table_storage () =
  let t = Alias_table.create (Chex86_stats.Counter.create_group ()) in
  let s0 = Alias_table.storage_bytes t in
  Alias_table.set t 0x1000 1;
  let s1 = Alias_table.storage_bytes t in
  Alcotest.(check bool) "nodes allocated on first insert" true (s1 > s0);
  Alias_table.set t 0x1008 2;
  Alcotest.(check int) "same leaf reused" s1 (Alias_table.storage_bytes t)

let test_predictor_constant_and_stride () =
  let g = Chex86_stats.Counter.create_group () in
  let p = Alias_predictor.create g in
  for _ = 1 to 4 do
    Alias_predictor.update p 0x400100 ~actual:9
  done;
  Alcotest.(check int) "constant learned" 9 (Alias_predictor.predict p 0x400100);
  for i = 1 to 6 do
    Alias_predictor.update p 0x400200 ~actual:(10 + i)
  done;
  Alcotest.(check int) "stride learned" 17 (Alias_predictor.predict p 0x400200)

let test_predictor_blacklist () =
  let g = Chex86_stats.Counter.create_group () in
  let p = Alias_predictor.create g in
  (* data loads: actual 0 from non-alias pages *)
  for _ = 1 to 4 do
    Alias_predictor.update ~alias_page:false p 0x400300 ~actual:0
  done;
  Alcotest.(check bool) "blacklisted" true (Alias_predictor.blacklisted p 0x400300);
  Alcotest.(check int) "blacklisted predicts 0" 0 (Alias_predictor.predict p 0x400300);
  (* one pointer outcome resets the blacklist *)
  Alias_predictor.update ~alias_page:true p 0x400300 ~actual:5;
  Alcotest.(check bool) "pointer hit resets" false (Alias_predictor.blacklisted p 0x400300)

let test_predictor_null_does_not_blacklist () =
  let g = Chex86_stats.Counter.create_group () in
  let p = Alias_predictor.create g in
  for _ = 1 to 10 do
    Alias_predictor.update ~alias_page:true p 0x400400 ~actual:0
  done;
  Alcotest.(check bool) "NULLs from alias pages never blacklist" false
    (Alias_predictor.blacklisted p 0x400400)

(* ---------- pattern classifier (Table II) ---------- *)

let test_pattern_classifier_table2 () =
  List.iter
    (fun (expected, _, seq) ->
      Alcotest.(check string) expected expected
        (Pattern_classifier.name (Pattern_classifier.classify seq)))
    Pattern_classifier.table_ii_examples

let test_pattern_classifier_edges () =
  Alcotest.(check string) "empty" "Constant"
    (Pattern_classifier.name (Pattern_classifier.classify []));
  Alcotest.(check string) "singleton" "Constant"
    (Pattern_classifier.name (Pattern_classifier.classify [ 42 ]))

(* ---------- checker ---------- *)

let test_checker () =
  let table = Cap_table.create (Chex86_stats.Counter.create_group ()) in
  let cap = Cap_table.fresh table ~size:64 in
  Cap_table.finalize table cap.Capability.pid ~base:0x1000;
  let checker = Checker.create table in
  let uop = Uop.Mov { dst = Greg RAX; src = Greg RBX } in
  Checker.check checker ~pc:0x400000 ~uop ~result:0x1010 ~predicted:cap.Capability.pid;
  Alcotest.(check (float 1e-9)) "agreement" 1. (Checker.agreement_rate checker);
  Checker.check checker ~pc:0x400004 ~uop ~result:0x1010 ~predicted:0;
  Alcotest.(check int) "mismatch recorded" 1 (List.length (Checker.mismatches checker));
  Alcotest.(check int) "both checks counted" 2 (Checker.checked checker)

(* ---------- end-to-end monitor semantics ---------- *)

let simple_program body =
  let b = Asm.create () in
  Asm.label b "_start";
  body b;
  Asm.emit b Insn.Halt;
  Asm.build b

let run ?(variant = Variant.default) program = Sim.run ~variant ~timing:false program

let expect_violation name program pred =
  match (run program).Sim.outcome with
  | Sim.Violation_detected kind ->
    Alcotest.(check bool) (name ^ ": class") true (pred kind)
  | Sim.Completed -> Alcotest.failf "%s: violation missed" name
  | _ -> Alcotest.failf "%s: unexpected outcome" name

let expect_clean name program =
  match (run program).Sim.outcome with
  | Sim.Completed -> ()
  | Sim.Violation_detected kind ->
    Alcotest.failf "%s: false positive: %s" name (Violation.to_string kind)
  | _ -> Alcotest.failf "%s: unexpected outcome" name

let is_oob = function Violation.Out_of_bounds _ -> true | _ -> false
let is_uaf = function Violation.Use_after_free _ -> true | _ -> false

let test_detect_boundaries () =
  (* Access at base+size-8 passes, base+size is flagged. *)
  expect_clean "last word in bounds"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RAX ~disp:56 ()), Imm 1))));
  expect_violation "one past the end"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RAX ~disp:64 ()), Imm 1))))
    is_oob;
  expect_violation "straddling the end (width)"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W8, Mem (Insn.mem ~base:RAX ~disp:64 ()), Imm 1))))
    is_oob;
  expect_violation "below the base"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W64, Reg RBX, Mem (Insn.mem ~base:RAX ~disp:(-8) ())))))
    is_oob

let test_detect_pointer_arithmetic () =
  (* ADD rule: derived pointer carries the PID. *)
  expect_violation "add-derived pointer OOB"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W64, Reg RBX, Reg RAX));
         Asm.emit b (Insn.Alu (Add, Reg RBX, Imm 64));
         Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg RBX), Imm 1))))
    is_oob;
  (* LEA rule. *)
  expect_violation "lea-derived pointer OOB"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W64, Reg RCX, Imm 9));
         Asm.emit b (Insn.Lea (RBX, Insn.mem ~base:RAX ~index:RCX ~scale:8 ()));
         Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg RBX), Imm 1))))
    is_oob;
  (* SUB rule keeps the minuend's PID. *)
  expect_violation "sub-derived pointer OOB"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W64, Reg RBX, Reg RAX));
         Asm.emit b (Insn.Alu (Sub, Reg RBX, Imm 8));
         Asm.emit b (Insn.Mov (W64, Reg RDX, Mem (Insn.mem_of_reg RBX)))))
    is_oob;
  (* In-bounds pointer arithmetic must stay clean. *)
  expect_clean "in-bounds arithmetic"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W64, Reg RBX, Reg RAX));
         Asm.emit b (Insn.Alu (Add, Reg RBX, Imm 32));
         Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg RBX), Imm 1))))

let test_detect_spill_reload () =
  (* The alias path: pointer spilled to a global, reloaded, then abused. *)
  let program =
    let b = Asm.create () in
    let slot = Asm.global b "slot" 8 in
    Asm.label b "_start";
    Asm.call_malloc b 64;
    Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_abs slot), Reg RAX));
    Asm.emit b (Insn.Mov (W64, Reg RAX, Imm 0));  (* clobber the register *)
    Asm.emit b (Insn.Mov (W64, Reg RBX, Mem (Insn.mem_abs slot)));  (* reload *)
    Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RBX ~disp:72 ()), Imm 1));
    Asm.emit b Insn.Halt;
    Asm.build b
  in
  expect_violation "reloaded pointer OOB" program is_oob

let test_detect_stack_spill () =
  expect_violation "push/pop spilled pointer OOB"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Push (Reg RAX));
         Asm.emit b (Insn.Mov (W64, Reg RAX, Imm 0));
         Asm.emit b (Insn.Pop RBX);
         Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RBX ~disp:64 ()), Imm 1))))
    is_oob

let test_detect_uaf_and_frees () =
  expect_violation "use after free"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W64, Reg R12, Reg RAX));
         Asm.call_free b R12;
         Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg R12), Imm 1))))
    is_uaf;
  expect_violation "double free"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W64, Reg R12, Reg RAX));
         Asm.call_free b R12;
         Asm.call_free b R12))
    (function Violation.Double_free _ -> true | _ -> false);
  expect_violation "invalid (interior) free"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Lea (RDI, Insn.mem ~base:RAX ~disp:16 ()));
         Asm.call_extern b "free"))
    (function Violation.Invalid_free _ -> true | _ -> false);
  expect_clean "free(NULL) is benign"
    (simple_program (fun b ->
         Asm.emit b (Insn.Mov (W64, Reg RDI, Imm 0));
         Asm.call_extern b "free"))

let test_detect_wild_and_exhaustion () =
  expect_violation "wild constant dereference (MOVI rule)"
    (simple_program (fun b ->
         Asm.emit b (Insn.Mov (W64, Reg RBX, Imm 0x7fff1000));
         Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg RBX), Imm 1))))
    (function Violation.Wild_dereference _ -> true | _ -> false);
  expect_violation "resource exhaustion at capGen"
    (simple_program (fun b -> Asm.call_malloc b (2 lsl 30)))
    (function Violation.Resource_exhaustion _ -> true | _ -> false)

let test_detect_globals () =
  let program oob =
    let b = Asm.create () in
    let g = Asm.global b "table" 64 in
    Asm.label b "_start";
    Asm.emit b (Insn.Lea (RBX, Insn.mem_abs g));
    Asm.emit b
      (Insn.Mov (W64, Mem (Insn.mem ~base:RBX ~disp:(if oob then 64 else 56) ()), Imm 1));
    Asm.emit b Insn.Halt;
    Asm.build b
  in
  expect_clean "global in bounds" (program false);
  expect_violation "global OOB via symbol-table capability" (program true) is_oob

let test_detect_realloc () =
  expect_violation "stale pointer after realloc"
    (simple_program (fun b ->
         Asm.call_malloc b 64;
         Asm.emit b (Insn.Mov (W64, Reg R12, Reg RAX));
         Asm.emit b (Insn.Mov (W64, Reg RDI, Reg R12));
         Asm.emit b (Insn.Mov (W64, Reg RSI, Imm 256));
         Asm.call_extern b "realloc";
         Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg R12), Imm 1))))
    is_uaf

let test_all_variants_detect () =
  let program =
    simple_program (fun b ->
        Asm.call_malloc b 64;
        Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RAX ~disp:64 ()), Imm 1)))
  in
  List.iter
    (fun scheme ->
      match (run ~variant:(Variant.make scheme) program).Sim.outcome with
      | Sim.Violation_detected _ -> ()
      | _ -> Alcotest.failf "%s missed the overflow" (Variant.scheme_name scheme))
    [
      Variant.Hardware_only;
      Variant.Binary_translation;
      Variant.Microcode_always_on;
      Variant.Microcode_prediction;
    ];
  match (run ~variant:(Variant.make Variant.Insecure) program).Sim.outcome with
  | Sim.Completed -> ()
  | _ -> Alcotest.fail "insecure baseline should not detect"

let test_context_sensitive_scope () =
  let program =
    simple_program (fun b ->
        Asm.call_malloc b 64;
        Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RAX ~disp:64 ()), Imm 1)))
  in
  (* Scope covering no code: allocation tracked, check not injected. *)
  let out_of_scope =
    Variant.make ~scope:(Variant.Ranges [ (0, 4) ]) Variant.Microcode_prediction
  in
  (match (run ~variant:out_of_scope program).Sim.outcome with
  | Sim.Completed -> ()
  | _ -> Alcotest.fail "out-of-scope dereference should not be checked");
  let in_scope =
    Variant.make
      ~scope:(Variant.Ranges [ (Program.text_base, Program.text_base + 0x1000) ])
      Variant.Microcode_prediction
  in
  match (run ~variant:in_scope program).Sim.outcome with
  | Sim.Violation_detected _ -> ()
  | _ -> Alcotest.fail "in-scope dereference must be checked"

let test_uop_injection_accounting () =
  let program =
    simple_program (fun b ->
        Asm.call_malloc b 64;
        Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg RAX), Imm 1));
        Asm.call_free b RAX)
  in
  let protected_run = Sim.run program in
  let insecure_run = Sim.run ~variant:(Variant.make Variant.Insecure) program in
  Alcotest.(check bool) "injection under prediction" true
    (protected_run.Sim.result.Chex86_machine.Simulator.uops_injected > 0);
  Alcotest.(check int) "no injection when insecure" 0
    insecure_run.Sim.result.Chex86_machine.Simulator.uops_injected

(* The §V-A rule-construction story, end to end: a workload that encodes
   pointers with XOR (a pattern outside Table I) escapes tracking — the
   hardware checker reports the mismatch — and a rule-database update
   (the modelled in-field microcode update) restores detection. *)
let xor_tagging_program () =
  simple_program (fun b ->
      Asm.call_malloc b 64;
      (* "tag" the pointer: p ^= 0x5; later untag and dereference OOB *)
      Asm.emit b (Insn.Alu (Xor, Reg RAX, Imm 5));
      Asm.emit b (Insn.Mov (W64, Reg RBX, Reg RAX));
      Asm.emit b (Insn.Alu (Xor, Reg RBX, Imm 5));
      Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RBX ~disp:64 ()), Imm 1)))

let xor_rule =
  {
    Rules.uop = Rules.OTHER;
    mode = Rules.Reg_imm;
    action = Rules.Copy_first;
    example = "xori %rcx, %rbx, $imm";
    propagation = "PID(rcx) <- PID(rbx)";
    code_example = "ptr ^= TAG;";
  }

let test_rule_update_restores_detection () =
  (* Default database: the XOR clears the PID, so the OOB write escapes. *)
  (match (run (xor_tagging_program ())).Sim.outcome with
  | Sim.Completed -> ()
  | _ -> Alcotest.fail "XOR tagging should evade the default Table I rules");
  (* The checker (exhaustive search) notices the tracker losing the
     pointer. *)
  let checker_result = ref None in
  let configure m =
    let c = Checker.create (Monitor.cap_table m) in
    Monitor.attach_checker m c;
    checker_result := Some c
  in
  ignore (Sim.run ~timing:false ~configure (xor_tagging_program ()));
  (match !checker_result with
  | Some c ->
    Alcotest.(check bool) "checker reports a mismatch" true
      (List.length (Checker.mismatches c) > 0)
  | None -> Alcotest.fail "checker not attached");
  (* Extend the database in the field: detection is restored. *)
  let add_rule m = Rules.add_rule (Monitor.rules m) xor_rule in
  match (Sim.run ~timing:false ~configure:add_rule (xor_tagging_program ())).Sim.outcome with
  | Sim.Violation_detected (Violation.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "rule update must restore detection"

let test_prediction_queue_invariant () =
  (* After a full workload, the decode-time prediction queue must have
     stayed aligned with execution (no empty pops, no pc mismatches). *)
  let w = Chex86_workloads.Workloads.find "perlbench" in
  let r = Sim.run ~timing:false (w.Chex86_workloads.Bench_spec.build ~scale:1) in
  let c = r.Sim.result.Chex86_machine.Simulator.counters in
  Alcotest.(check int) "no empty pops" 0 (Chex86_stats.Counter.get c "alias.queue_empty");
  Alcotest.(check int) "no pc mismatches" 0
    (Chex86_stats.Counter.get c "alias.queue_mismatch")

(* Fig 5's three alias-misprediction recovery paths, each driven by a
   crafted reload pattern and observed through the counters. *)
let counter run name =
  Chex86_stats.Counter.get run.Sim.result.Chex86_machine.Simulator.counters name

let reload_program ~slots ~order =
  (* table[i] = malloc(64) for each slot; then reload table[order[j]]
     through ONE load PC and dereference. *)
  let b = Asm.create () in
  (* one extra (never-filled, NULL) slot so orders can reference it *)
  let table = Asm.global b "t5_table" (8 * (slots + 1)) in
  let order_tab = Asm.global b "t5_order" (8 * List.length order) in
  Asm.label b "_start";
  Chex86_workloads.Kernels.alloc_into_table b ~table ~count:slots ~size:64;
  List.iteri
    (fun i slot ->
      Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_abs (order_tab + (8 * i))), Imm slot)))
    order;
  Asm.emit b (Insn.Mov (W64, Reg RCX, Imm 0));
  let loop = Asm.fresh b "t5" in
  Asm.label b loop;
  Asm.emit b (Insn.Mov (W64, Reg R10, Mem (Insn.mem ~index:RCX ~scale:8 ~disp:order_tab ())));
  Asm.emit b (Insn.Mov (W64, Reg RBX, Mem (Insn.mem ~index:R10 ~scale:8 ~disp:table ())));
  (* NULL slots (order index = slots) are skipped *)
  Asm.emit b (Insn.Test (Reg RBX, Reg RBX));
  let skip = Asm.fresh b "t5skip" in
  Asm.emit b (Insn.Jcc (Eq, skip));
  Asm.emit b (Insn.Inc (Mem (Insn.mem ~base:RBX ~disp:8 ())));
  Asm.label b skip;
  Asm.emit b (Insn.Inc (Reg RCX));
  Asm.emit b (Insn.Cmp (Reg RCX, Imm (List.length order)));
  Asm.emit b (Insn.Jcc (Lt, loop));
  Asm.emit b Insn.Halt;
  Asm.build b

let test_fig5_recovery_paths () =
  (* timing on: the killed-uop accounting lives in the pipeline *)
  let trun program = Sim.run program in
  (* P0AN: the very first reload at a cold PC is an unanticipated
     pointer: pipeline flush. *)
  let cold = trun (reload_program ~slots:4 ~order:[ 0; 1; 2; 3 ]) in
  Alcotest.(check bool) "P0AN fires on the cold reload" true
    (counter cold "alias.pred_p0an" >= 1);
  (* PMAN: alternating PIDs at one PC — wrong PID, cheap forward, and
     crucially no flood of flushes. *)
  let alternating =
    trun (reload_program ~slots:2 ~order:(List.concat (List.init 20 (fun _ -> [ 0; 1 ]))))
  in
  Alcotest.(check bool) "PMAN forwards" true (counter alternating "alias.pred_pman" >= 10);
  Alcotest.(check bool) "PMAN does not flush" true
    (counter alternating "alias.pred_p0an" <= 2);
  (* PNA0: a reload PC that sometimes finds an empty (NULL-bearing,
     untracked) slot: the pre-injected check dies as a zero-idiom. *)
  let with_nulls =
    (* slot index 2 is past the two allocated entries: reads NULL *)
    trun
      (reload_program ~slots:2 ~order:(List.concat (List.init 20 (fun _ -> [ 0; 0; 2 ]))))
  in
  Alcotest.(check bool) "PNA0 fires" true (counter with_nulls "alias.pred_pna0" >= 5);
  Alcotest.(check bool) "PNA0 kills decode slots" true
    (counter with_nulls "pipeline.uops_killed" >= 5)

(* The paper's one observed false positive (§VII-B): leela statically
   linked against libstdc++ dereferences a global through a constant
   integer address; the MOVI rule tags it PID(-1) and capCheck flags it.
   This is intended behaviour of the design — the test pins it so the
   model stays faithful to the paper's discussion. *)
let test_paper_false_positive_constant_global () =
  let b = Asm.create () in
  let g = Asm.global b "static_table" 64 in
  Asm.label b "_start";
  (* constant-pool (Lea) materialization: tracked, clean *)
  Asm.emit b (Insn.Lea (RBX, Insn.mem_abs g));
  Asm.emit b (Insn.Mov (W64, Reg RAX, Mem (Insn.mem_of_reg RBX)));
  Asm.emit b Insn.Halt;
  expect_clean "PC-relative/constant-pool path tracked" (Asm.build b);
  let b = Asm.create () in
  let g = Asm.global b "static_table" 64 in
  Asm.label b "_start";
  (* integer-constant materialization: the MOVI rule fires *)
  Asm.emit b (Insn.Mov (W64, Reg RBX, Imm g));
  Asm.emit b (Insn.Mov (W64, Reg RAX, Mem (Insn.mem_of_reg RBX)));
  Asm.emit b Insn.Halt;
  expect_violation "integer-constant global deref = the paper's leela FP" (Asm.build b)
    (function Violation.Wild_dereference _ -> true | _ -> false)

(* ---------- extensions: rodata globals + uninitialized reads ---------- *)

let test_rodata_globals () =
  let program write =
    let b = Asm.create () in
    let g = Asm.global ~writable:false b "lookup_table" 64 in
    Asm.label b "_start";
    Asm.emit b (Insn.Lea (RBX, Insn.mem_abs g));
    if write then Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg RBX), Imm 1))
    else Asm.emit b (Insn.Mov (W64, Reg RAX, Mem (Insn.mem_of_reg RBX)));
    Asm.emit b Insn.Halt;
    Asm.build b
  in
  expect_clean "reading .rodata" (program false);
  expect_violation "writing .rodata" (program true)
    (function Violation.Permission_denied _ -> true | _ -> false)

let uninit_variant =
  Variant.make ~detect_uninitialized:true Variant.Microcode_prediction

let test_uninitialized_reads () =
  let program body =
    simple_program (fun b ->
        Asm.call_malloc b 64;
        Asm.emit b (Insn.Mov (W64, Reg RBX, Reg RAX));
        body b)
  in
  let write_then_read =
    program (fun b ->
        Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg RBX), Imm 7));
        Asm.emit b (Insn.Mov (W64, Reg RAX, Mem (Insn.mem_of_reg RBX))))
  in
  let read_fresh =
    program (fun b ->
        Asm.emit b (Insn.Mov (W64, Reg RAX, Mem (Insn.mem ~base:RBX ~disp:8 ()))))
  in
  let narrow_over_wide =
    (* An 8-byte write initializes any narrower read inside it. *)
    program (fun b ->
        Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg RBX), Imm 7));
        Asm.emit b (Insn.Mov (W8, Reg RAX, Mem (Insn.mem ~base:RBX ~disp:3 ()))))
  in
  (match (run ~variant:uninit_variant write_then_read).Sim.outcome with
  | Sim.Completed -> ()
  | _ -> Alcotest.fail "write-before-read must be clean");
  (match (run ~variant:uninit_variant narrow_over_wide).Sim.outcome with
  | Sim.Completed -> ()
  | _ -> Alcotest.fail "narrow read inside a wide write must be clean");
  (match (run ~variant:uninit_variant read_fresh).Sim.outcome with
  | Sim.Violation_detected (Violation.Uninitialized_read _) -> ()
  | _ -> Alcotest.fail "fresh-malloc read must be flagged");
  (* Off by default. *)
  match (run read_fresh).Sim.outcome with
  | Sim.Completed -> ()
  | _ -> Alcotest.fail "uninitialized-read detection must be opt-in"

let test_uninitialized_calloc_realloc () =
  let calloc_read =
    simple_program (fun b ->
        Asm.emit b (Insn.Mov (W64, Reg RDI, Imm 8));
        Asm.emit b (Insn.Mov (W64, Reg RSI, Imm 8));
        Asm.call_extern b "calloc";
        Asm.emit b (Insn.Mov (W64, Reg RBX, Mem (Insn.mem ~base:RAX ~disp:16 ()))))
  in
  match (run ~variant:uninit_variant calloc_read).Sim.outcome with
  | Sim.Completed -> ()
  | _ -> Alcotest.fail "calloc memory is initialized"

(* ---------- SMP: shared shadow tables + invalidation bus ---------- *)

let test_smp_cross_core_uaf () =
  let r =
    Smp.run ~timing:false ~threads:[ "thread0"; "thread1" ]
      (Chex86_workloads.Parallel.cross_core_uaf ())
  in
  match r.Smp.outcome with
  | Smp.Violation_detected { core; kind } ->
    Alcotest.(check int) "detected on the consuming core" 1 core;
    Alcotest.(check bool) "classified UAF" true
      (match kind with Violation.Use_after_free _ -> true | _ -> false)
  | _ -> Alcotest.fail "cross-core use-after-free missed"

let test_smp_clean_and_invalidations () =
  let run threads =
    Smp.run ~threads:(Chex86_workloads.Parallel.thread_labels threads)
      (Chex86_workloads.Parallel.canneal_mt ~threads ~scale:1)
  in
  let single = run 1 and quad = run 4 in
  (match (single.Smp.outcome, quad.Smp.outcome) with
  | Smp.Completed, Smp.Completed -> ()
  | _ -> Alcotest.fail "multithreaded workload must run clean under CHEx86");
  Alcotest.(check int) "no invalidations on one core" 0 single.Smp.cap_invalidations;
  Alcotest.(check bool) "frees broadcast capability invalidations" true
    (quad.Smp.cap_invalidations > 0);
  Alcotest.(check bool) "spills broadcast alias invalidations" true
    (quad.Smp.alias_invalidations > 0);
  Alcotest.(check int) "work scales with threads" (4 * single.Smp.macro_insns)
    quad.Smp.macro_insns;
  (* Round-robin cores progress in parallel: the slowest of four cores
     must be far below four times one core. *)
  Alcotest.(check bool) "parallel speedup" true
    (quad.Smp.cycles < 2 * single.Smp.cycles)

let qcheck_smp_interleaving_invariant =
  (* Shared shadow state must behave under any scheduler quantum: the
     multithreaded workload stays false-positive-free, and the total
     work is interleaving-independent. *)
  QCheck.Test.make ~name:"SMP clean under any scheduler quantum" ~count:6
    QCheck.(int_range 1 9)
    (fun quantum ->
      let r =
        Smp.run ~timing:false ~quantum
          ~threads:(Chex86_workloads.Parallel.thread_labels 2)
          (Chex86_workloads.Parallel.canneal_mt ~threads:2 ~scale:1)
      in
      r.Smp.outcome = Smp.Completed)

let test_allocation_failure_path () =
  (* The allocator runs out of heap (below CHEx86's 1 GB limit): malloc
     returns NULL, capGen.End leaves the capability invalid, and a
     program that checks for NULL completes cleanly. *)
  let program =
    simple_program (fun b ->
        Asm.call_malloc b 0x2FF0_0000;
        Asm.emit b (Insn.Test (Reg RAX, Reg RAX));
        let ok = Asm.fresh b "got_null" in
        Asm.emit b (Insn.Jcc (Eq, ok));
        (* would only run if the huge allocation surprisingly succeeded *)
        Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg RAX), Imm 1));
        Asm.label b ok)
  in
  let run_result = run program in
  (match run_result.Sim.outcome with
  | Sim.Completed -> ()
  | _ -> Alcotest.fail "NULL-checked failed allocation must be clean");
  (* The failed allocation's capability exists but never became valid. *)
  let table = Monitor.cap_table run_result.Sim.monitor in
  let invalid_fresh = ref 0 in
  Cap_table.iter table (fun cap ->
      if (not cap.Capability.valid) && cap.Capability.base = 0 then incr invalid_fresh);
  Alcotest.(check int) "one never-finalized capability" 1 !invalid_fresh

let test_smp_determinism () =
  (* Regression: the round-robin scheduler has no hidden state — the
     same program under the same quantum is bit-identical run to run,
     down to the shadow-table counters and the invalidation traffic. *)
  let snapshot quantum =
    let r =
      Smp.run ~timing:false ~quantum
        ~threads:(Chex86_workloads.Parallel.thread_labels 4)
        (Chex86_workloads.Parallel.canneal_mt ~threads:4 ~scale:1)
    in
    ( r.Smp.outcome,
      r.Smp.cycles,
      r.Smp.per_core_cycles,
      r.Smp.macro_insns,
      r.Smp.cap_invalidations,
      r.Smp.alias_invalidations,
      Chex86_stats.Counter.to_list r.Smp.counters )
  in
  List.iter
    (fun quantum ->
      let a = snapshot quantum and b = snapshot quantum in
      Alcotest.(check bool)
        (Printf.sprintf "quantum %d bit-identical" quantum)
        true (a = b))
    [ 1; 3; 8 ];
  (* Sanity: the invalidation counters above are non-trivial, so the
     equality is not vacuous. *)
  let _, _, _, _, caps, aliases, _ = snapshot 1 in
  Alcotest.(check bool) "cap invalidations exercised" true (caps > 0);
  Alcotest.(check bool) "alias invalidations exercised" true (aliases > 0)

let test_smp_insecure_misses_cross_core_uaf () =
  let r =
    Smp.run ~timing:false
      ~variant:(Variant.make Variant.Insecure)
      ~threads:[ "thread0"; "thread1" ]
      (Chex86_workloads.Parallel.cross_core_uaf ())
  in
  match r.Smp.outcome with
  | Smp.Completed -> ()
  | _ -> Alcotest.fail "insecure SMP baseline should complete"

let () =
  Alcotest.run "core"
    [
      ( "capability",
        [
          Alcotest.test_case "contains" `Quick test_capability_contains;
          QCheck_alcotest.to_alcotest qcheck_capability_roundtrip;
        ] );
      ( "cap_table",
        [
          Alcotest.test_case "lifecycle" `Quick test_cap_table_lifecycle;
          Alcotest.test_case "NULL malloc" `Quick test_cap_table_null_malloc;
          Alcotest.test_case "find_by_address" `Quick test_cap_table_find_by_address;
          Alcotest.test_case "cap cache" `Quick test_cap_cache;
        ] );
      ( "rules",
        [
          Alcotest.test_case "Table I actions" `Quick test_rules_table1;
          Alcotest.test_case "combine" `Quick test_rules_combine;
          Alcotest.test_case "extensible database" `Quick test_rules_extensible;
        ] );
      ( "tracker",
        [
          Alcotest.test_case "basics" `Quick test_tracker_basics;
          Alcotest.test_case "squash recovery" `Quick test_tracker_squash_recovery;
          Alcotest.test_case "xmm untracked" `Quick test_tracker_xmm_untracked;
          QCheck_alcotest.to_alcotest qcheck_tracker_squash_prefix;
        ] );
      ( "alias",
        [
          Alcotest.test_case "alias table" `Quick test_alias_table;
          Alcotest.test_case "walk depth" `Quick test_alias_table_walk_depth;
          Alcotest.test_case "storage" `Quick test_alias_table_storage;
          QCheck_alcotest.to_alcotest qcheck_alias_table_roundtrip;
          Alcotest.test_case "predictor learns" `Quick test_predictor_constant_and_stride;
          Alcotest.test_case "blacklist" `Quick test_predictor_blacklist;
          Alcotest.test_case "NULLs don't blacklist" `Quick
            test_predictor_null_does_not_blacklist;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "Table II examples" `Quick test_pattern_classifier_table2;
          Alcotest.test_case "edge cases" `Quick test_pattern_classifier_edges;
        ] );
      ("checker", [ Alcotest.test_case "validation" `Quick test_checker ]);
      ( "detection",
        [
          Alcotest.test_case "bounds edges" `Quick test_detect_boundaries;
          Alcotest.test_case "pointer arithmetic rules" `Quick
            test_detect_pointer_arithmetic;
          Alcotest.test_case "spill/reload" `Quick test_detect_spill_reload;
          Alcotest.test_case "stack spill" `Quick test_detect_stack_spill;
          Alcotest.test_case "UAF / frees" `Quick test_detect_uaf_and_frees;
          Alcotest.test_case "wild / exhaustion" `Quick test_detect_wild_and_exhaustion;
          Alcotest.test_case "globals" `Quick test_detect_globals;
          Alcotest.test_case "realloc" `Quick test_detect_realloc;
          Alcotest.test_case "all variants" `Quick test_all_variants_detect;
          Alcotest.test_case "context-sensitive scope" `Quick test_context_sensitive_scope;
          Alcotest.test_case "uop accounting" `Quick test_uop_injection_accounting;
          Alcotest.test_case "rule update restores detection" `Quick
            test_rule_update_restores_detection;
          Alcotest.test_case "prediction queue invariant" `Slow
            test_prediction_queue_invariant;
        ] );
      ( "paper fidelity",
        [
          Alcotest.test_case "Fig 5 recovery paths" `Quick test_fig5_recovery_paths;
          Alcotest.test_case "section VII-B constant-global FP" `Quick
            test_paper_false_positive_constant_global;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "rodata globals" `Quick test_rodata_globals;
          Alcotest.test_case "uninitialized reads" `Quick test_uninitialized_reads;
          Alcotest.test_case "calloc/realloc initialized" `Quick
            test_uninitialized_calloc_realloc;
        ] );
      ( "smp",
        [
          Alcotest.test_case "cross-core UAF" `Quick test_smp_cross_core_uaf;
          Alcotest.test_case "clean run + invalidations" `Quick
            test_smp_clean_and_invalidations;
          Alcotest.test_case "insecure baseline" `Quick
            test_smp_insecure_misses_cross_core_uaf;
          QCheck_alcotest.to_alcotest qcheck_smp_interleaving_invariant;
          Alcotest.test_case "determinism" `Quick test_smp_determinism;
          Alcotest.test_case "allocation failure path" `Quick
            test_allocation_failure_path;
        ] );
    ]
