(* SIGKILL/resume chaos soak for chex86d, modeled on chaos_soak.ml.

   For each dispatch geometry (serial / --jobs 2 / --workers 2) it
   drives [--legs] randomized kill legs.  Each leg: fresh store root,
   start the daemon with CHEX86_FAULT_POINT=<daemon point>=kill@<n> in
   its environment, submit a fixed batch of selftest jobs over the JSON
   control port, and poll them to completion — restarting the daemon
   (fault-free) with capped-exponential client reconnect whenever it
   dies under us.  A job that comes back "unknown" after a restart was
   killed before its journal record published (its submit was never
   acked), so the client resubmits under the same idempotent id.

   Asserted per leg:
     - every job reaches state "done" before the deadline, with results
       byte-identical to a fault-free serial reference (one reference
       serves all geometries: sweep results are bit-identical across
       dispatch geometries by construction, and the soak re-checks that
       here);
     - exactly-once: the journal holds exactly one completion record
       per job and no pending records once all jobs are done;
     - [Runner.Store.fsck] over the leg's store root reports zero
       invariant violations;
     - after the final graceful shutdown the store lock is released.

   One extra admission-control leg runs a small-queue daemon into
   saturation with slow jobs and asserts that overflow submits receive
   explicit "REJECTED busy" responses (and that rejected jobs can be
   resubmitted to completion once the queue drains) — bounded queue,
   never a hang.

   The PRNG is seeded ([--seed]) so a failing leg reproduces exactly;
   a JSON report of every leg goes to [--report FILE]. *)

module Daemon = Chex86_harness.Daemon
module Runner = Chex86_harness.Runner
module Json = Chex86_stats.Json

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "daemon_soak: %s\n%!" msg;
      exit 2)
    fmt

let chex86d_exe () =
  match Sys.getenv_opt "CHEX86D_EXE" with
  | Some p when p <> "" -> p
  | _ -> (
    let dir = Filename.dirname Sys.executable_name in
    let candidate =
      Filename.concat dir (Filename.concat ".." (Filename.concat "bin" "chex86d.exe"))
    in
    match Sys.file_exists candidate with
    | true -> candidate
    | false -> die "cannot find bin/chex86d.exe (set CHEX86D_EXE)")

let geometries =
  [
    ("serial", [ "--jobs"; "1" ]);
    ("jobs2", [ "--jobs"; "2" ]);
    ("workers2", [ "--jobs"; "1"; "--workers"; "2" ]);
  ]

let kill_points =
  [ "daemon.accept"; "daemon.journal.append"; "daemon.dispatch"; "daemon.result.publish" ]

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Environment for the daemon: current env minus fault/workload
   variables, plus whatever the leg injects. *)
let child_env extra =
  let keep e =
    let pref k = String.length e >= String.length k && String.sub e 0 (String.length k) = k in
    not
      (pref "CHEX86_FAULT_RATE=" || pref "CHEX86_FAULT_SEED="
      || pref "CHEX86_FAULT_KIND=" || pref "CHEX86_FAULT_POINT="
      || pref "CHEX86_WORKLOADS=" || pref "CHEX86_SCALE=")
  in
  Array.of_list (List.filter keep (Array.to_list (Unix.environment ())) @ extra)

(* --- one-request-per-connection JSON client -------------------------------- *)

(* A connection per op keeps the client trivially correct across daemon
   deaths: no half-read buffers to resynchronize, every failure surfaces
   as Error and the caller's reconnect backoff handles it. *)
let request ~port v =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let s = Json.to_string v ^ "\n" in
        let n = String.length s in
        let rec send off = if off < n then send (off + Unix.write_substring fd s off (n - off)) in
        send 0;
        let buf = Buffer.create 256 in
        let chunk = Bytes.create 512 in
        let rec recv () =
          if Buffer.length buf > 1_000_000 then Error "reply too large"
          else
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> Error "connection closed mid-reply"
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              if Bytes.index_opt (Bytes.sub chunk 0 n) '\n' <> None then
                let line = List.hd (String.split_on_char '\n' (Buffer.contents buf)) in
                Json.of_string line
              else recv ()
        in
        recv ()
      with
      | r -> r
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let jstr k v = Option.bind (Json.member k v) Json.to_string_opt
let jbool k v = match Json.member k v with Some (Json.Bool b) -> Some b | _ -> None

(* Pipeline several requests over ONE connection and collect one reply
   per request.  The admission-control leg needs this: queue-full
   backpressure stops the daemon from accepting NEW connections, so
   fresh-connection submits just wait in the kernel backlog — the
   explicit REJECTED path is what an already-connected client sees. *)
let request_pipelined ~port vs =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let s = String.concat "" (List.map (fun v -> Json.to_string v ^ "\n") vs) in
        let n = String.length s in
        let rec send off = if off < n then send (off + Unix.write_substring fd s off (n - off)) in
        send 0;
        let want = List.length vs in
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 1024 in
        let lines () =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
        in
        let rec recv () =
          if Buffer.length buf > 4_000_000 then Error "reply too large"
          else if List.length (lines ()) >= want then begin
            let parsed = List.map Json.of_string (lines ()) in
            match List.find_opt Result.is_error parsed with
            | Some (Error e) -> Error ("bad reply json: " ^ e)
            | _ -> Ok (List.filter_map Result.to_option parsed)
          end
          else
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> Error "connection closed mid-reply"
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              recv ()
        in
        recv ()
      with
      | r -> r
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

(* --- daemon process management --------------------------------------------- *)

type daemon = { pid : int; log : string }

let start_daemon ~exe ~cache ~port ~geom_flags ~extra_env ~log =
  let argv =
    Array.of_list
      ([
         exe;
         "--cache-dir";
         cache;
         "--port";
         string_of_int port;
         "--queue-limit";
         "64";
         "--client-inflight";
         "64";
       ]
      @ geom_flags)
  in
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let pid = Unix.create_process_env exe argv (child_env extra_env) Unix.stdin fd fd in
  Unix.close fd;
  { pid; log }

(* Has the daemon exited?  Reaps it if so (reaping matters: the stale
   store lock is only reclaimable once the old pid stops existing). *)
let daemon_status d =
  match Unix.waitpid [ Unix.WNOHANG ] d.pid with
  | 0, _ -> `Alive
  | _, st -> `Exited st
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> `Exited (Unix.WEXITED 0)

let kill_daemon d =
  (match Unix.kill d.pid Sys.sigkill with
  | () -> ()
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ());
  match Unix.waitpid [] d.pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()

(* Capped-exponential client reconnect: the soak IS the daemon's
   client, so it exercises the reconnect discipline the docs promise. *)
let backoff attempt = Float.min 0.5 (0.01 *. Float.pow 2. (float_of_int (min attempt 8)))

let wait_ready ~port ~deadline d =
  let rec go attempt =
    if Unix.gettimeofday () > deadline then `Timeout
    else
      match daemon_status d with
      | `Exited st -> `Died st
      | `Alive -> (
        match request ~port (Json.Obj [ ("op", Json.String "stats") ]) with
        | Ok _ -> `Ready
        | Error _ ->
          Unix.sleepf (backoff attempt);
          go (attempt + 1))
  in
  go 0

(* --- the job batch ---------------------------------------------------------- *)

let jobs_per_leg = 6
let tasks_per_job = 4

let job_id k = Printf.sprintf "job-%d" k

let job_tasks k =
  List.init tasks_per_job (fun i ->
      Json.Obj
        [
          ("key", Json.String (Printf.sprintf "j%d-t%d" k i));
          ("arg", Json.String "8");
        ])

let submit_json k =
  Json.Obj
    [
      ("op", Json.String "submit");
      ("id", Json.String (job_id k));
      ("client", Json.String "soak");
      ("kind", Json.String "selftest");
      ("tasks", Json.List (job_tasks k));
    ]

let status_json k =
  Json.Obj [ ("op", Json.String "status"); ("id", Json.String (job_id k)) ]

(* Canonical byte form of a job's results for the reference compare. *)
let results_repr v =
  match Json.member "results" v with Some r -> Json.to_string r | None -> "<none>"

(* --- a kill leg ------------------------------------------------------------- *)

type leg_outcome = {
  completed : bool;  (** all jobs reached done in time *)
  match_ref : bool;
  exactly_once : bool;
  fsck_clean : bool;
  lock_released : bool;
  killed : bool;  (** the armed point actually fired *)
  restarts : int;
}

(* Submit every job and poll to done, restarting the daemon (fault-free)
   every time it dies.  Returns the per-job results (byte form) or times
   out. *)
let drive_jobs ~exe ~cache ~port ~geom_flags ~log ~deadline d0 =
  let d = ref d0 in
  let killed = ref false and restarts = ref 0 in
  let results = Array.make jobs_per_leg None in
  let note_death st =
    (match st with Unix.WSIGNALED s when s = Sys.sigkill -> killed := true | _ -> ());
    incr restarts;
    (* Fault-free restart: the journal replay takes it from here. *)
    d := start_daemon ~exe ~cache ~port ~geom_flags ~extra_env:[] ~log;
    ignore (wait_ready ~port ~deadline d.contents)
  in
  let rec with_daemon attempt f =
    if Unix.gettimeofday () > deadline then Error "deadline"
    else
      match daemon_status d.contents with
      | `Exited st ->
        note_death st;
        with_daemon 0 f
      | `Alive -> (
        match f () with
        | Ok v -> Ok v
        | Error _ ->
          Unix.sleepf (backoff attempt);
          with_daemon (attempt + 1) f)
  in
  let submit k = with_daemon 0 (fun () -> request ~port (submit_json k)) in
  let all_submitted =
    List.for_all
      (fun k ->
        match submit k with
        | Ok reply -> (
          match (jbool "ok" reply, jstr "error" reply) with
          | Some true, _ -> true
          | _, Some err ->
            Printf.eprintf "daemon_soak: submit %s rejected: %s\n%!" (job_id k) err;
            false
          | _ -> false)
        | Error e ->
          Printf.eprintf "daemon_soak: submit %s failed: %s\n%!" (job_id k) e;
          false)
      (List.init jobs_per_leg Fun.id)
  in
  let rec poll () =
    if Unix.gettimeofday () > deadline then false
    else if Array.for_all Option.is_some results then true
    else begin
      Array.iteri
        (fun k r ->
          if r = None then
            match with_daemon 0 (fun () -> request ~port (status_json k)) with
            | Error _ -> ()
            | Ok reply -> (
              match jstr "state" reply with
              | Some "done" -> results.(k) <- Some (results_repr reply)
              | Some "unknown" ->
                (* Killed before the journal record published: the ack
                   never happened, so resubmit under the same id. *)
                ignore (with_daemon 0 (fun () -> request ~port (submit_json k)))
              | _ -> ()))
        results;
      Unix.sleepf 0.05;
      poll ()
    end
  in
  let done_ = all_submitted && poll () in
  (* Graceful shutdown (releases the lock); force-kill if unreachable. *)
  (match
     with_daemon 0 (fun () -> request ~port (Json.Obj [ ("op", Json.String "shutdown") ]))
   with
  | Ok _ | Error _ -> ());
  let rec wait_exit tries =
    match daemon_status d.contents with
    | `Exited st ->
      (match st with Unix.WSIGNALED s when s = Sys.sigkill -> killed := true | _ -> ())
    | `Alive ->
      if tries = 0 then kill_daemon d.contents
      else begin
        Unix.sleepf 0.1;
        wait_exit (tries - 1)
      end
  in
  wait_exit 50;
  (done_, results, !killed, !restarts)

let run_kill_leg ~exe ~scratch ~port ~geom ~geom_flags ~reference ~point ~ordinal ~leg =
  let cache = Filename.concat scratch (Printf.sprintf "%s-leg%d" geom leg) in
  let log = Filename.concat scratch (Printf.sprintf "%s-leg%d.log" geom leg) in
  let spec = Printf.sprintf "CHEX86_FAULT_POINT=%s=kill@%d" point ordinal in
  let d0 = start_daemon ~exe ~cache ~port ~geom_flags ~extra_env:[ spec ] ~log in
  let deadline = Unix.gettimeofday () +. 180. in
  ignore (wait_ready ~port ~deadline d0);
  let completed, results, killed, restarts =
    drive_jobs ~exe ~cache ~port ~geom_flags ~log ~deadline d0
  in
  let match_ref =
    completed
    && Array.for_all2 (fun got want -> got = Some want) results reference
  in
  let scan = Daemon.Journal.scan ~dir:(Daemon.journal_dir ~store_root:cache) in
  let exactly_once =
    scan.Daemon.Journal.s_pending = []
    && List.length scan.Daemon.Journal.s_done = jobs_per_leg
    && List.sort compare
         (List.map (fun (_, c) -> c.Daemon.Journal.c_id) scan.Daemon.Journal.s_done)
       = List.init jobs_per_leg job_id
  in
  let fsck_clean = Runner.Store.fsck_clean (Runner.Store.fsck ~dir:cache) in
  let lock_released = Daemon.lock_holder ~store_root:cache = None in
  {
    completed;
    match_ref;
    exactly_once;
    fsck_clean;
    lock_released;
    killed;
    restarts;
  }

(* --- the fault-free serial reference ---------------------------------------- *)

let reference_results ~exe ~scratch ~port =
  let cache = Filename.concat scratch "reference" in
  let log = Filename.concat scratch "reference.log" in
  let d = start_daemon ~exe ~cache ~port ~geom_flags:[ "--jobs"; "1" ] ~extra_env:[] ~log in
  let deadline = Unix.gettimeofday () +. 120. in
  (match wait_ready ~port ~deadline d with
  | `Ready -> ()
  | _ -> die "reference daemon never came up (see %s)" log);
  let completed, results, _, _ =
    drive_jobs ~exe ~cache ~port ~geom_flags:[ "--jobs"; "1" ] ~log ~deadline d
  in
  if not completed then die "reference run did not complete (see %s)" log;
  Array.map
    (function Some r -> r | None -> die "reference result missing")
    results

(* --- the admission-control leg ---------------------------------------------- *)

let run_rejection_leg ~exe ~scratch ~port =
  let cache = Filename.concat scratch "rejection" in
  let log = Filename.concat scratch "rejection.log" in
  let argv =
    [|
      exe; "--cache-dir"; cache; "--port"; string_of_int port;
      "--queue-limit"; "2"; "--client-inflight"; "64"; "--jobs"; "1";
    |]
  in
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let pid = Unix.create_process_env exe argv (child_env []) Unix.stdin fd fd in
  Unix.close fd;
  let d = { pid; log } in
  let deadline = Unix.gettimeofday () +. 120. in
  (match wait_ready ~port ~deadline d with
  | `Ready -> ()
  | _ -> die "rejection daemon never came up (see %s)" log);
  let slow_submit_json k =
    Json.Obj
      [
        ("op", Json.String "submit");
        ("id", Json.String (Printf.sprintf "slow-%d" k));
        ("client", Json.String "soak");
        ("kind", Json.String "daemon.sleep");
        ( "tasks",
          Json.List
            [
              Json.Obj
                [
                  ("key", Json.String (Printf.sprintf "s%d" k));
                  ("arg", Json.String "0.4");
                ];
            ] );
      ]
  in
  let slow_submit k = request ~port (slow_submit_json k) in
  let total = 8 in
  let accepted = ref [] and rejected = ref [] and weird = ref 0 in
  (* All 8 submits down one pipelined connection: the connection is
     accepted while the queue is empty, then admission control sees the
     burst and must answer the overflow with explicit REJECTED busy
     (fresh connections would instead be held by accept backpressure). *)
  (match
     request_pipelined ~port (List.map slow_submit_json (List.init total Fun.id))
   with
  | Error e -> die "rejection burst failed: %s" e
  | Ok replies ->
    List.iteri
      (fun k reply ->
        match (jbool "ok" reply, jstr "error" reply) with
        | Some true, _ -> accepted := k :: !accepted
        | _, Some err
          when String.length err >= 13 && String.sub err 0 13 = "REJECTED busy" ->
          rejected := k :: !rejected
        | _ -> incr weird)
      replies);
  let explicit_rejects = !rejected <> [] && !accepted <> [] && !weird = 0 in
  (* Once the queue drains, a rejected job must be resubmittable to
     completion — backpressure sheds load, it does not lose work. *)
  let rec finish k attempt =
    if Unix.gettimeofday () > deadline then false
    else
      match
        request ~port
          (Json.Obj
             [ ("op", Json.String "status");
               ("id", Json.String (Printf.sprintf "slow-%d" k)) ])
      with
      | Ok reply when jstr "state" reply = Some "done" -> true
      | Ok reply when jstr "state" reply = Some "unknown" -> (
        match slow_submit k with
        | Ok _ | Error _ ->
          Unix.sleepf (backoff attempt);
          finish k (attempt + 1))
      | Ok _ | Error _ ->
        Unix.sleepf (backoff attempt);
        finish k (attempt + 1)
  in
  let all_finish = List.for_all (fun k -> finish k 0) (List.init total Fun.id) in
  let stats_agree =
    match request ~port (Json.Obj [ ("op", Json.String "stats") ]) with
    | Ok v -> (
      match Json.member "rejected_queue_full" v with
      | Some (Json.Int n) -> n >= List.length !rejected
      | _ -> false)
    | Error _ -> false
  in
  ignore (request ~port (Json.Obj [ ("op", Json.String "shutdown") ]));
  let rec reap tries =
    match daemon_status d with
    | `Exited _ -> ()
    | `Alive ->
      if tries = 0 then kill_daemon d
      else begin
        Unix.sleepf 0.1;
        reap (tries - 1)
      end
  in
  reap 50;
  (explicit_rejects, all_finish, stats_agree, List.length !rejected)

(* --- entry ------------------------------------------------------------------ *)

let soak ~legs ~seed ~report_file ~wanted =
  let exe = chex86d_exe () in
  let scratch =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chex86-daemon-%d" (Unix.getpid ()))
  in
  rm_rf scratch;
  Unix.mkdir scratch 0o755;
  let port = 7400 + (Unix.getpid () mod 400) in
  let rng = Random.State.make [| seed |] in
  let failures = ref 0 and kills = ref 0 in
  let leg_reports = ref [] in
  let geoms =
    List.filter (fun (name, _) -> wanted = [] || List.mem name wanted) geometries
  in
  if geoms = [] then die "no geometries selected";
  let reference = reference_results ~exe ~scratch ~port in
  List.iter
    (fun (geom, geom_flags) ->
      for leg = 1 to legs do
        let point =
          List.nth kill_points (Random.State.int rng (List.length kill_points))
        in
        let ordinal = 1 + Random.State.int rng 6 in
        let o =
          run_kill_leg ~exe ~scratch ~port ~geom ~geom_flags ~reference ~point ~ordinal
            ~leg
        in
        if o.killed then incr kills;
        let pass =
          o.completed && o.match_ref && o.exactly_once && o.fsck_clean
          && o.lock_released
        in
        if not pass then incr failures;
        Printf.printf "%-9s leg %2d  %-28s@%d %s (killed=%b restarts=%d match=%b once=%b fsck=%b lock=%b)\n%!"
          geom leg point ordinal
          (if pass then "ok" else "FAIL")
          o.killed o.restarts o.match_ref o.exactly_once o.fsck_clean o.lock_released;
        leg_reports :=
          Json.Obj
            [
              ("geometry", Json.String geom);
              ("leg", Json.Int leg);
              ("point", Json.String point);
              ("ordinal", Json.Int ordinal);
              ("killed", Json.Bool o.killed);
              ("restarts", Json.Int o.restarts);
              ("completed", Json.Bool o.completed);
              ("match_reference", Json.Bool o.match_ref);
              ("exactly_once", Json.Bool o.exactly_once);
              ("fsck_clean", Json.Bool o.fsck_clean);
              ("lock_released", Json.Bool o.lock_released);
            ]
          :: !leg_reports;
        if pass then begin
          rm_rf (Filename.concat scratch (Printf.sprintf "%s-leg%d" geom leg));
          try Sys.remove (Filename.concat scratch (Printf.sprintf "%s-leg%d.log" geom leg))
          with Sys_error _ -> ()
        end
      done)
    geoms;
  let explicit_rejects, rejected_finish, stats_agree, rejections =
    run_rejection_leg ~exe ~scratch ~port
  in
  let rejection_pass = explicit_rejects && rejected_finish && stats_agree in
  if not rejection_pass then incr failures;
  Printf.printf "rejection leg        %s (explicit=%b finish=%b stats=%b rejected=%d)\n%!"
    (if rejection_pass then "ok" else "FAIL")
    explicit_rejects rejected_finish stats_agree rejections;
  (* A soak where no daemon ever died proves nothing. *)
  let total = legs * List.length geoms in
  let sane = !kills > 0 in
  if not sane then
    Printf.eprintf "daemon_soak: no leg was ever killed — points dead?\n%!";
  (match report_file with
  | None -> ()
  | Some path ->
    let body =
      Json.to_string
        (Json.Obj
           [
             ("legs", Json.Int total);
             ("seed", Json.Int seed);
             ("killed", Json.Int !kills);
             ("failures", Json.Int !failures);
             ("sane", Json.Bool sane);
             ( "rejection_leg",
               Json.Obj
                 [
                   ("pass", Json.Bool rejection_pass);
                   ("explicit_rejects", Json.Bool explicit_rejects);
                   ("rejected_resubmit_ok", Json.Bool rejected_finish);
                   ("rejections", Json.Int rejections);
                 ] );
             ("results", Json.List (List.rev !leg_reports));
           ])
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc body;
        output_char oc '\n'));
  Printf.printf "daemon soak: %d kill legs + rejection leg, %d killed, %d failures\n%!"
    total !kills !failures;
  if !failures > 0 || not sane then exit 1;
  rm_rf scratch

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: rest ->
    let legs = ref 4 and seed = ref 42 and report = ref None and geoms = ref [] in
    let rec parse = function
      | [] -> ()
      | "--legs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
          legs := n;
          parse rest
        | _ -> die "invalid --legs value %S" v)
      | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n ->
          seed := n;
          parse rest
        | _ -> die "invalid --seed value %S" v)
      | "--report" :: v :: rest ->
        report := Some v;
        parse rest
      | "--geometries" :: v :: rest ->
        geoms := String.split_on_char ',' v;
        parse rest
      | arg :: _ ->
        die
          "unknown argument %S (usage: daemon_soak [--legs N] [--seed S] [--report FILE] [--geometries a,b])"
          arg
    in
    parse rest;
    soak ~legs:!legs ~seed:!seed ~report_file:!report ~wanted:!geoms
  | [] -> die "empty argv"
