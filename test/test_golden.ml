(* Golden per-(workload x variant) timing counters.

   Every (workload, variant) cell below is simulated at a fixed scale and
   its complete counter snapshot — cycles, uop counts, every cache / TLB /
   predictor / monitor event — is compared byte-for-byte against
   golden/timing.json.  This is the equivalence evidence for hot-path
   refactors of the timing model: an optimization pass must leave every
   number identical, and an intentional timing bugfix must re-pin the
   golden file in the same commit with the delta called out.

   Regenerate (from the repo root) with:

     dune build test/test_golden.exe
     CHEX86_GOLDEN_UPDATE=test/golden/timing.json \
       ./_build/default/test/test_golden.exe *)

module Runner = Chex86_harness.Runner
module Json = Chex86_stats.Json
module Counter = Chex86_stats.Counter

let golden_scale = 1 (* fixed: goldens must not move with CHEX86_SCALE *)

let workload_names = [ "mcf"; "canneal" ]

let variants =
  [
    ("insecure", Runner.insecure);
    ("chex86", Runner.prediction);
    ( "always_on",
      Runner.Chex (Chex86.Variant.make Chex86.Variant.Microcode_always_on) );
    ("asan", Runner.Asan);
  ]

let entry_of wname vname config =
  let w = Chex86_workloads.Workloads.find wname in
  let r = Runner.run_program config (w.build ~scale:golden_scale) in
  Json.Obj
    [
      ("workload", Json.String wname);
      ("variant", Json.String vname);
      ("macro_insns", Json.Int r.Runner.macro_insns);
      ("uops", Json.Int r.Runner.uops);
      ("cycles", Json.Int r.Runner.cycles);
      ( "counters",
        Counter.json_of_snapshot (Counter.group_snapshot r.Runner.counters) );
    ]

let current () =
  List.concat_map
    (fun wname ->
      List.map (fun (vname, config) -> entry_of wname vname config) variants)
    workload_names

let doc_of entries =
  Json.Obj
    [
      ("schema", Json.String "chex86-timing-golden-v1");
      ("scale", Json.Int golden_scale);
      ("entries", Json.List entries);
    ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  body

let write_file path body =
  let oc = open_out path in
  output_string oc body;
  output_char oc '\n';
  close_out oc

let key_of entry =
  match
    ( Option.bind (Json.member "workload" entry) Json.to_string_opt,
      Option.bind (Json.member "variant" entry) Json.to_string_opt )
  with
  | Some w, Some v -> w ^ "/" ^ v
  | _ -> "<malformed>"

(* Human-readable field diff between one golden and one current entry. *)
let diff_entry golden current =
  let flat prefix = function
    | Json.Obj fields ->
      List.map (fun (k, v) -> (prefix ^ k, Json.to_string v)) fields
    | other -> [ (prefix, Json.to_string other) ]
  in
  let flatten entry =
    match entry with
    | Json.Obj fields ->
      List.concat_map
        (fun (k, v) ->
          match v with
          | Json.Obj _ when k = "counters" -> flat (k ^ ".") v
          | _ -> [ (k, Json.to_string v) ])
        fields
    | other -> [ ("<entry>", Json.to_string other) ]
  in
  let g = flatten golden and c = flatten current in
  let keys = List.sort_uniq compare (List.map fst g @ List.map fst c) in
  List.filter_map
    (fun k ->
      let gv = Option.value (List.assoc_opt k g) ~default:"<absent>"
      and cv = Option.value (List.assoc_opt k c) ~default:"<absent>" in
      if gv = cv then None else Some (Printf.sprintf "  %s: golden %s, got %s" k gv cv))
    keys

let golden_entries () =
  match Json.of_string (read_file "golden/timing.json") with
  | Error e -> Alcotest.failf "golden/timing.json unparseable: %s" e
  | Ok doc -> (
    match Json.member "entries" doc with
    | Some (Json.List entries) -> entries
    | _ -> Alcotest.fail "golden/timing.json: no entries array")

let check_entry golden_by_key entry () =
  let key = key_of entry in
  match List.assoc_opt key golden_by_key with
  | None -> Alcotest.failf "%s missing from golden/timing.json — re-pin it" key
  | Some golden ->
    if Json.to_string golden <> Json.to_string entry then
      Alcotest.failf "%s diverged from golden/timing.json:\n%s" key
        (String.concat "\n" (diff_entry golden entry))

let () =
  match Sys.getenv_opt "CHEX86_GOLDEN_UPDATE" with
  | Some path when path <> "" ->
    write_file path (Json.to_string (doc_of (current ())));
    Printf.printf "[wrote %s]\n" path
  | _ ->
    let entries = current () in
    let golden_by_key = List.map (fun e -> (key_of e, e)) (golden_entries ()) in
    Alcotest.run "golden"
      [
        ( "timing",
          List.map
            (fun e -> Alcotest.test_case (key_of e) `Quick (check_entry golden_by_key e))
            entries );
      ]
