(* Tests for the supervised sweep engine: per-task fault containment,
   retry/timeout budgets, the deterministic fault-injection harness, and
   the on-disk result store's checkpoint/resume path.  Every failure
   mode here is *injected* via Faultinject plans keyed on stable task
   keys, so the assertions hold at any job count. *)

module Pool = Chex86_harness.Pool
module Faultinject = Chex86_harness.Faultinject
module Runner = Chex86_harness.Runner
module Counter = Chex86_stats.Counter
module W = Chex86_workloads.Workloads

let with_plan plan f =
  Faultinject.arm plan;
  Fun.protect ~finally:Faultinject.disarm f

(* Fault projection that drops backtrace strings (they depend on where
   the exception was caught, not on what faulted). *)
let fault_shape = function
  | Pool.Crashed { exn; _ } -> "crashed:" ^ exn
  | Pool.Timed_out { budget } -> Printf.sprintf "timed_out:%g" budget
  | Pool.Worker_lost { reason } -> "worker_lost:" ^ reason

let report_shape (r : Pool.fault_report) =
  ( (r.tasks, r.ok, r.retried_ok, r.crashed, r.timed_out, r.retries_used),
    List.map
      (fun (f : Pool.task_fault) -> (f.index, f.key, f.attempts, fault_shape f.fault))
      r.task_faults )

let tasks_10 = Array.init 10 (fun i -> i)
let key_of = string_of_int

(* --- supervision basics --------------------------------------------------- *)

let test_all_ok () =
  let results, report = Pool.map_supervised ~jobs:3 ~key:key_of (fun x -> x * x) tasks_10 in
  Array.iteri
    (fun i r -> Alcotest.(check (result int reject)) "squared" (Ok (i * i)) r)
    results;
  Alcotest.(check int) "tasks" 10 report.Pool.tasks;
  Alcotest.(check int) "ok" 10 report.Pool.ok;
  Alcotest.(check int) "no faults" 0 (report.Pool.crashed + report.Pool.timed_out);
  Alcotest.(check int) "no retries" 0 report.Pool.retries_used

let test_real_crash_contained () =
  (* A genuine task exception (not injected) is classified with its
     backtrace, and every healthy task still returns. *)
  let results, report =
    Pool.map_supervised ~jobs:4 ~key:key_of
      (fun x -> if x = 6 then failwith "boom" else x + 1)
      tasks_10
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "healthy result" (i + 1) v
      | Error (Pool.Crashed { exn; backtrace }) ->
        Alcotest.(check int) "only task 6 crashed" 6 i;
        Alcotest.(check bool) "exception text" true
          (String.length exn > 0 && String.length backtrace > 0)
      | Error fault -> Alcotest.fail ("unexpected fault: " ^ Pool.fault_to_string fault))
    results;
  Alcotest.(check int) "one crash" 1 report.Pool.crashed;
  Alcotest.(check int) "nine ok" 9 report.Pool.ok

let test_injected_faults_match_plan () =
  (* Seeded plan faulting >= 3 tasks: two crashes plus one stall that
     trips the cooperative deadline.  The report must mirror the plan
     exactly; all healthy tasks return results. *)
  let plan =
    Faultinject.of_list
      [
        ("2", Faultinject.crash ());
        ("5", Faultinject.crash ());
        ("8", Faultinject.slow 0.3);
      ]
  in
  let results, report =
    with_plan plan (fun () ->
        Pool.map_supervised ~jobs:4 ~task_timeout:0.05 ~key:key_of
          (fun x ->
            Pool.check_deadline ();
            x * 10)
          tasks_10)
  in
  Array.iteri
    (fun i r ->
      match (r, i) with
      | Error (Pool.Crashed _), (2 | 5) -> ()
      | Error (Pool.Timed_out { budget }), 8 ->
        Alcotest.(check (float 1e-9)) "budget recorded" 0.05 budget
      | Ok v, _ -> Alcotest.(check int) "healthy result" (i * 10) v
      | Error f, _ -> Alcotest.failf "task %d unexpectedly faulted: %s" i (fault_shape f))
    results;
  Alcotest.(check int) "crashed" 2 report.Pool.crashed;
  Alcotest.(check int) "timed out" 1 report.Pool.timed_out;
  Alcotest.(check int) "ok" 7 report.Pool.ok;
  Alcotest.(check (list (pair int string)))
    "faulted tasks in task order"
    [ (2, "2"); (5, "5"); (8, "8") ]
    (List.map
       (fun (f : Pool.task_fault) -> (f.index, f.key))
       report.Pool.task_faults)

let test_retry_recovers_bit_identical () =
  (* Crash directives with a 1-attempt budget: the retry succeeds, and
     recovered results equal the unfaulted serial run exactly. *)
  let f x = (x * 7) + 3 in
  let unfaulted = Pool.map ~jobs:1 f tasks_10 in
  let plan =
    Faultinject.of_list
      [
        ("1", Faultinject.crash ~attempts:1 ());
        ("4", Faultinject.crash ~attempts:1 ());
        ("9", Faultinject.crash ~attempts:1 ());
      ]
  in
  let results, report =
    with_plan plan (fun () ->
        Pool.map_supervised ~jobs:3 ~retries:1 ~key:key_of f tasks_10)
  in
  Array.iteri
    (fun i r ->
      Alcotest.(check (result int reject)) "recovered == unfaulted" (Ok unfaulted.(i)) r)
    results;
  Alcotest.(check int) "all ok" 10 report.Pool.ok;
  Alcotest.(check int) "three recovered by retry" 3 report.Pool.retried_ok;
  Alcotest.(check int) "three extra attempts" 3 report.Pool.retries_used;
  Alcotest.(check int) "nothing faulted" 0 (report.Pool.crashed + report.Pool.timed_out)

let test_exhausted_retries_fault () =
  (* A crash directive outlasting the retry budget still faults, with
     the attempt count recorded. *)
  let plan = Faultinject.of_list [ ("3", Faultinject.crash ~attempts:5 ()) ] in
  let _, report =
    with_plan plan (fun () ->
        Pool.map_supervised ~jobs:2 ~retries:2 ~key:key_of (fun x -> x) tasks_10)
  in
  Alcotest.(check int) "crashed" 1 report.Pool.crashed;
  Alcotest.(check int) "retries spent" 2 report.Pool.retries_used;
  match report.Pool.task_faults with
  | [ f ] -> Alcotest.(check int) "3 attempts made" 3 f.Pool.attempts
  | _ -> Alcotest.fail "expected exactly one task fault"

let test_supervised_jobs_invariance () =
  (* Same plan, same tasks: the report and results are identical at any
     job count (modulo backtrace text, which is caught-site noise). *)
  let plan =
    Faultinject.of_list
      [ ("0", Faultinject.crash ()); ("7", Faultinject.crash ~attempts:1 ()) ]
  in
  let run jobs =
    with_plan plan (fun () ->
        let results, report =
          Pool.map_supervised ~jobs ~retries:1 ~key:key_of (fun x -> x * 2) tasks_10
        in
        (Array.map (Result.map_error fault_shape) results, report_shape report))
  in
  let serial = run 1 in
  List.iter
    (fun jobs ->
      let parallel = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d matches serial" jobs)
        true (serial = parallel))
    [ 2; 4; 8 ]

let test_seeded_plan_deterministic () =
  let keys = List.init 200 string_of_int in
  let hits rate seed =
    List.filter
      (fun k ->
        Faultinject.arm (Faultinject.seeded ~rate ~seed ());
        let hit = Faultinject.fault_for ~key:k ~attempt:0 <> None in
        Faultinject.disarm ();
        hit)
      keys
  in
  let a = hits 0.25 42 and b = hits 0.25 42 in
  Alcotest.(check (list string)) "same keys fault for same seed" a b;
  Alcotest.(check bool) "rate selects some but not all" true
    (List.length a > 0 && List.length a < 200);
  let c = hits 0.25 43 in
  Alcotest.(check bool) "different seed, different selection" true (a <> c)

(* --- supervised stats ----------------------------------------------------- *)

let test_stats_discard_faulted () =
  (* Each completed task bumps a counter; a faulted attempt's partial
     stats must be discarded wholesale, and the pool.* fault counters
     land in the merged group. *)
  let body x (ctx : Pool.ctx) =
    Counter.incr ctx.Pool.counters "t.count";
    Counter.incr ~by:x ctx.Pool.counters "t.sum";
    (* the crash fires before the body on attempt 0, so partial-stats
       discard is exercised by the *real* exception below *)
    if x = 4 then failwith "late crash after stats were touched";
    x
  in
  let results, stats, report =
    Pool.map_stats_supervised ~jobs:3 ~key:key_of body tasks_10
  in
  Alcotest.(check int) "one crash" 1 report.Pool.crashed;
  (match results.(4) with
  | Error (Pool.Crashed _) -> ()
  | _ -> Alcotest.fail "task 4 should have crashed");
  Alcotest.(check int) "faulted task's counter discarded" 9
    (Counter.get stats.Pool.counters "t.count");
  Alcotest.(check int) "faulted task's sum discarded" (45 - 4)
    (Counter.get stats.Pool.counters "t.sum");
  Alcotest.(check int) "pool.tasks" 10 (Counter.get stats.Pool.counters "pool.tasks");
  Alcotest.(check int) "pool.ok" 9 (Counter.get stats.Pool.counters "pool.ok");
  Alcotest.(check int) "pool.crashed" 1 (Counter.get stats.Pool.counters "pool.crashed")

let test_stats_supervised_matches_plain_when_healthy () =
  (* With no plan armed, the supervised merge equals map_stats' merge
     plus the pool.* counters. *)
  let body x (ctx : Pool.ctx) =
    Counter.incr ~by:x ctx.Pool.counters "t.sum";
    Chex86_stats.Histogram.add (ctx.Pool.histogram "t.h") x;
    x
  in
  let _, plain = Pool.map_stats ~jobs:2 ~key:key_of body tasks_10 in
  let _, supervised, _ = Pool.map_stats_supervised ~jobs:2 ~key:key_of body tasks_10 in
  Alcotest.(check int) "t.sum equal" (Counter.get plain.Pool.counters "t.sum")
    (Counter.get supervised.Pool.counters "t.sum");
  let h stats =
    match List.assoc_opt "t.h" stats.Pool.histograms with
    | Some h -> (Chex86_stats.Histogram.count h, Chex86_stats.Histogram.max_value h)
    | None -> (0, 0)
  in
  Alcotest.(check (pair int int)) "t.h equal" (h plain) (h supervised);
  Alcotest.(check int) "pool.ok present" 10
    (Counter.get supervised.Pool.counters "pool.ok")

(* --- batched supervision --------------------------------------------------- *)

let drop_chunks counters =
  List.filter (fun (name, _) -> name <> "pool.chunks") counters

let test_batched_mid_chunk_crash_isolated () =
  (* Ten tasks in chunks of five; the plan crashes key "7" (mid second
     chunk). Exactly that task faults — its chunk-mates 5,6,8,9 and the
     whole first chunk complete, and the report is keyed per task. *)
  let plan = Faultinject.of_list [ ("7", Faultinject.crash ()) ] in
  let results, report =
    with_plan plan (fun () ->
        Pool.map_supervised_batched ~jobs:2 ~batch_size:5 ~key:key_of
          (fun x -> x * 11)
          tasks_10)
  in
  Array.iteri
    (fun i r ->
      match (r, i) with
      | Error (Pool.Crashed _), 7 -> ()
      | Ok v, _ -> Alcotest.(check int) "chunk-mates complete" (i * 11) v
      | Error f, _ -> Alcotest.failf "task %d unexpectedly faulted: %s" i (fault_shape f))
    results;
  Alcotest.(check int) "exactly one task faulted" 1 report.Pool.crashed;
  Alcotest.(check int) "nine ok" 9 report.Pool.ok;
  Alcotest.(check int) "two dispatch rounds" 2 report.Pool.chunks;
  Alcotest.(check (list (pair int string)))
    "fault keyed per task, not per chunk"
    [ (7, "7") ]
    (List.map
       (fun (f : Pool.task_fault) -> (f.index, f.key))
       report.Pool.task_faults)

let test_batched_supervised_matches_unbatched () =
  (* Same plan at several batch sizes: results, merged stats (minus
     pool.chunks) and the report all equal the unbatched supervised run;
     retries re-seed per task exactly as before. *)
  let plan =
    Faultinject.of_list
      [ ("2", Faultinject.crash ~attempts:1 ()); ("6", Faultinject.crash ()) ]
  in
  let body x (ctx : Pool.ctx) =
    Counter.incr ~by:x ctx.Pool.counters "t.sum";
    Chex86_stats.Histogram.add (ctx.Pool.histogram "t.h") x;
    x + Chex86_stats.Rng.int ctx.Pool.rng 100
  in
  let shape (results, (stats : Pool.merged_stats), report) =
    ( Array.map (Result.map_error fault_shape) results,
      drop_chunks (Counter.to_list stats.Pool.counters),
      List.map
        (fun (name, h) -> (name, Chex86_stats.Histogram.sorted h))
        stats.Pool.histograms,
      report_shape report )
  in
  let unbatched =
    with_plan plan (fun () ->
        shape (Pool.map_stats_supervised ~jobs:3 ~retries:1 ~key:key_of body tasks_10))
  in
  List.iter
    (fun batch ->
      let batched =
        with_plan plan (fun () ->
            shape
              (Pool.map_stats_supervised_batched ~jobs:3 ~batch_size:batch ~retries:1
                 ~key:key_of body tasks_10))
      in
      Alcotest.(check bool)
        (Printf.sprintf "batch=%d matches unbatched" batch)
        true (unbatched = batched))
    [ 1; 3; 10 ]

(* --- security sweep degradation ------------------------------------------ *)

let test_security_sweep_supervised_degrades () =
  let exploits =
    List.filteri (fun i _ -> i < 6) Chex86_exploits.Exploits.all
  in
  let victim = (List.nth exploits 2).Chex86_exploits.Exploit.name in
  let plan = Faultinject.of_list [ (victim, Faultinject.crash ()) ] in
  let slots, stats, report =
    with_plan plan (fun () ->
        Chex86_harness.Security.sweep_stats_supervised ~jobs:2 exploits)
  in
  Alcotest.(check int) "one fault" 1 (report.Pool.crashed + report.Pool.timed_out);
  List.iteri
    (fun i ((e : Chex86_exploits.Exploit.t), r) ->
      match r with
      | Error _ ->
        Alcotest.(check string) "the planned victim faulted" victim e.name;
        Alcotest.(check int) "at the planned slot" 2 i
      | Ok result ->
        Alcotest.(check bool) "healthy evaluations complete" true
          (result.Chex86_harness.Security.exploit.Chex86_exploits.Exploit.name = e.name))
    slots;
  Alcotest.(check int) "sweep.total counts completed only" 5
    (Counter.get stats.Pool.counters "sweep.total")

(* --- on-disk result store -------------------------------------------------- *)

(* The store directory is relative, so everything lands inside dune's
   test sandbox. *)
let store_dir = "_test_chex86_cache"

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Published entries anywhere in the v2 tree (root for legacy v1,
   objects/<shard>/ for v2), as full paths. *)
let store_entries () =
  let acc = ref [] in
  let scan dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".run" && String.length name > 0 && name.[0] <> '.'
          then acc := Filename.concat dir name :: !acc)
        names
  in
  scan store_dir;
  (match Sys.readdir (Filename.concat store_dir "objects") with
  | exception Sys_error _ -> ()
  | shards ->
    Array.iter (fun s -> scan (Filename.concat (Filename.concat store_dir "objects") s)) shards);
  List.sort compare !acc

let the_store_entry () =
  match store_entries () with
  | [ entry ] -> entry
  | entries ->
    Alcotest.fail (Printf.sprintf "expected exactly one store entry, found %d"
                     (List.length entries))

let with_store f =
  Runner.reset_for_tests ();
  rm_rf store_dir;
  Runner.Store.configure ~dir:store_dir;
  Fun.protect
    ~finally:(fun () ->
      Runner.Store.disable ();
      rm_rf store_dir;
      Runner.reset_for_tests ())
    f

let run_fields (r : Runner.run) =
  (r.outcome, r.macro_insns, r.uops, r.uops_injected, r.uops_killed, r.cycles,
   r.shadow_bytes, r.resident_bytes, r.mem_bytes, r.pwned)

let test_store_roundtrip () =
  with_store (fun () ->
      let w = W.find "swaptions" in
      let a = Runner.run_workload ~tag:"st1" ~scale:1 Runner.insecure w in
      let s = Runner.Store.stats () in
      Alcotest.(check int) "cold run wrote an entry" 1 s.Runner.Store.writes;
      Alcotest.(check int) "cold run missed" 1 s.Runner.Store.misses;
      (* Forget the in-memory memo: the next call must load from disk
         and simulate nothing. *)
      Runner.reset_for_tests ();
      let b = Runner.run_workload ~tag:"st1" ~scale:1 Runner.insecure w in
      let s = Runner.Store.stats () in
      Alcotest.(check int) "warm run hit the store" 1 s.Runner.Store.hits;
      Alcotest.(check int) "warm run wrote nothing" 0 s.Runner.Store.writes;
      Alcotest.(check bool) "stored run identical" true (run_fields a = run_fields b);
      Alcotest.(check bool) "counters identical" true
        (Counter.to_list a.Runner.counters = Counter.to_list b.Runner.counters))

let test_store_discards_corrupt_entry () =
  with_store (fun () ->
      let w = W.find "swaptions" in
      let a = Runner.run_workload ~tag:"st2" ~scale:1 Runner.insecure w in
      (* Tear the entry as if the process died mid-write. *)
      Unix.truncate (the_store_entry ()) 25;
      Runner.reset_for_tests ();
      let b = Runner.run_workload ~tag:"st2" ~scale:1 Runner.insecure w in
      let s = Runner.Store.stats () in
      Alcotest.(check int) "corrupt entry discarded" 1 s.Runner.Store.discarded;
      Alcotest.(check int) "and quarantined, not deleted" 1 s.Runner.Store.quarantined;
      Alcotest.(check int) "and re-simulated + re-written" 1 s.Runner.Store.writes;
      Alcotest.(check bool) "recomputed run identical" true (run_fields a = run_fields b))

let test_store_rejects_version_and_digest_mismatch () =
  with_store (fun () ->
      let w = W.find "swaptions" in
      let _ = Runner.run_workload ~tag:"st3" ~scale:1 Runner.insecure w in
      let path = the_store_entry () in
      (* Flip one payload byte: the digest line no longer matches. *)
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      let size = (Unix.fstat fd).Unix.st_size in
      ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 1 '\xFF') 0 1);
      Unix.close fd;
      Runner.reset_for_tests ();
      let _ = Runner.run_workload ~tag:"st3" ~scale:1 Runner.insecure w in
      let s = Runner.Store.stats () in
      Alcotest.(check int) "tampered entry discarded" 1 s.Runner.Store.discarded;
      Alcotest.(check int) "no false hit" 0 s.Runner.Store.hits)

let test_killed_then_resumed_sweep () =
  (* The acceptance scenario: a sweep warms the cache, one entry is
     deliberately truncated (a torn write), and the re-run reproduces
     identical results while re-simulating only the damaged task. *)
  with_store (fun () ->
      let jobs_list =
        List.map
          (fun name -> Runner.job ~tag:"resume" ~scale:1 Runner.insecure (W.find name))
          [ "swaptions"; "mcf"; "canneal" ]
      in
      let report = Runner.prefetch_supervised ~jobs:2 jobs_list in
      Alcotest.(check int) "cold sweep healthy" 0
        (report.Pool.crashed + report.Pool.timed_out);
      let first =
        List.map
          (fun name ->
            run_fields
              (Runner.run_workload ~tag:"resume" ~scale:1 Runner.insecure (W.find name)))
          [ "swaptions"; "mcf"; "canneal" ]
      in
      Alcotest.(check int) "three entries written" 3 (Runner.Store.stats ()).Runner.Store.writes;
      (* Kill: drop all in-process state; tear one entry. *)
      let victim = List.nth (store_entries ()) 1 in
      Unix.truncate victim 30;
      Runner.reset_for_tests ();
      let report = Runner.prefetch_supervised ~jobs:2 jobs_list in
      Alcotest.(check int) "resumed sweep healthy" 0
        (report.Pool.crashed + report.Pool.timed_out);
      let second =
        List.map
          (fun name ->
            run_fields
              (Runner.run_workload ~tag:"resume" ~scale:1 Runner.insecure (W.find name)))
          [ "swaptions"; "mcf"; "canneal" ]
      in
      let s = Runner.Store.stats () in
      Alcotest.(check bool) "resume reproduces identical results" true (first = second);
      Alcotest.(check int) "two tasks loaded from disk" 2 s.Runner.Store.hits;
      Alcotest.(check int) "the torn entry was discarded" 1 s.Runner.Store.discarded;
      Alcotest.(check int) "only the damaged task re-simulated" 1 s.Runner.Store.writes)

let test_injected_cache_truncation () =
  (* The Truncate_cache directive models the torn write end-to-end: the
     armed plan truncates the freshly written entry, and the next run
     detects and discards it instead of trusting it. *)
  with_store (fun () ->
      let w = W.find "swaptions" in
      let key =
        Runner.job_key (Runner.job ~tag:"st4" ~scale:1 Runner.insecure w)
      in
      let plan = Faultinject.of_list [ (key, Faultinject.truncate_cache 20) ] in
      let a =
        with_plan plan (fun () ->
            Runner.run_workload ~tag:"st4" ~scale:1 Runner.insecure w)
      in
      Runner.reset_for_tests ();
      let b = Runner.run_workload ~tag:"st4" ~scale:1 Runner.insecure w in
      let s = Runner.Store.stats () in
      Alcotest.(check int) "truncated entry discarded" 1 s.Runner.Store.discarded;
      Alcotest.(check bool) "result unaffected" true (run_fields a = run_fields b))

let test_prefetch_supervised_records_faults () =
  (* A faulted job is visible through run_workload_result and
     faulted_jobs, and a later supervised prefetch does not retry it. *)
  with_store (fun () ->
      let w = W.find "swaptions" in
      let job = Runner.job ~tag:"st5" ~scale:1 Runner.insecure w in
      let plan = Faultinject.of_list [ (Runner.job_key job, Faultinject.crash ()) ] in
      let report = with_plan plan (fun () -> Runner.prefetch_supervised ~jobs:2 [ job ]) in
      Alcotest.(check int) "the job crashed" 1 report.Pool.crashed;
      (match Runner.run_workload_result ~tag:"st5" ~scale:1 Runner.insecure w with
      | Error (Pool.Crashed _) -> ()
      | _ -> Alcotest.fail "fault should be reported through run_workload_result");
      Alcotest.(check int) "recorded in the fault table" 1
        (List.length (Runner.faulted_jobs ()));
      (* Re-prefetching skips the faulted key entirely (no retry storm). *)
      let report2 = Runner.prefetch_supervised ~jobs:2 [ job ] in
      Alcotest.(check int) "nothing re-attempted" 0 report2.Pool.tasks)

let test_sliced_slow_respects_deadline () =
  (* A Slow directive far exceeding the wall budget must not block the
     domain for the full stall: the injected sleep is sliced and
     re-checks the cooperative deadline between naps, so the task times
     out promptly instead of holding its domain for the whole stall. *)
  let plan = Faultinject.of_list [ ("0", Faultinject.slow 30.) ] in
  let t0 = Pool.now () in
  let results, report =
    with_plan plan (fun () ->
        Pool.map_supervised ~jobs:1 ~task_timeout:0.2 ~key:key_of (fun x -> x) [| 0 |])
  in
  let elapsed = Pool.now () -. t0 in
  Alcotest.(check bool) "timed out promptly, not after the 30s stall" true
    (elapsed < 5.);
  (match results.(0) with
  | Error (Pool.Timed_out _) -> ()
  | _ -> Alcotest.fail "expected a timeout");
  Alcotest.(check int) "one timeout" 1 report.Pool.timed_out

let test_tmp_reclamation () =
  (* Stale .tmp-<pid>-* files from a killed sweep are swept on
     configure; a live writer's tmp files are left alone, and so is a
     dead writer's file younger than the safety age — between the
     liveness probe and the unlink the pid could have been recycled by
     a brand-new writer (runner.ml pid-reuse hazard). *)
  with_store (fun () ->
      (try Unix.mkdir store_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let dead_pid =
        (* A pid guaranteed dead: a reaped child. (Unix.fork is off
           limits once domains exist; create_process is not.) *)
        let pid =
          Unix.create_process "/bin/true" [| "/bin/true" |] Unix.stdin Unix.stdout
            Unix.stderr
        in
        ignore (Unix.waitpid [] pid);
        pid
      in
      let dead_old = Filename.concat store_dir (Printf.sprintf ".tmp-%d-x.run" dead_pid) in
      let dead_young =
        Filename.concat store_dir (Printf.sprintf ".tmp-%d-z.run" dead_pid)
      in
      let mine =
        Filename.concat store_dir (Printf.sprintf ".tmp-%d-y.run" (Unix.getpid ()))
      in
      List.iter
        (fun p ->
          let oc = open_out p in
          output_string oc "torn write";
          close_out oc)
        [ dead_old; dead_young; mine ];
      (* Age one dead tmp past the safety floor; the other stays at
         mtime now. *)
      let old = Unix.time () -. 120. in
      Unix.utimes dead_old old old;
      Runner.Store.configure ~dir:store_dir;
      Alcotest.(check bool) "dead writer's aged tmp reclaimed" false
        (Sys.file_exists dead_old);
      Alcotest.(check bool) "dead writer's young tmp kept (pid reuse guard)" true
        (Sys.file_exists dead_young);
      Alcotest.(check bool) "live writer's tmp kept" true (Sys.file_exists mine);
      Alcotest.(check int) "reclamation counted" 1
        (Runner.Store.stats ()).Runner.Store.tmp_reclaimed)

let test_store_marshal_guard () =
  (* Regression: an entry whose digest line matches a payload truncated
     inside the marshal header passes the digest check, so only the
     guarded [Marshal.from_string] can reject it — as a discard, never
     a crash. *)
  with_store (fun () ->
      let w = W.find "swaptions" in
      let a = Runner.run_workload ~tag:"st6" ~scale:1 Runner.insecure w in
      let path = the_store_entry () in
      let ic = open_in_bin path in
      let body =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* Rebuild a v2 entry whose digest and length lines both describe
         a payload truncated inside the marshal header. *)
      let version = List.hd (String.split_on_char '\n' body) in
      let nl1 = String.index body '\n' in
      let nl2 = String.index_from body (nl1 + 1) '\n' in
      let header_skip = String.index_from body (nl2 + 1) '\n' + 1 in
      let payload = String.sub body header_skip 10 in
      let oc = open_out_bin path in
      Printf.fprintf oc "%s\n%s\n%d\n%s" version
        (Digest.to_hex (Digest.string payload))
        (String.length payload) payload;
      close_out oc;
      Runner.reset_for_tests ();
      let b = Runner.run_workload ~tag:"st6" ~scale:1 Runner.insecure w in
      let s = Runner.Store.stats () in
      Alcotest.(check int) "digest-valid truncated entry discarded" 1
        s.Runner.Store.discarded;
      Alcotest.(check int) "no false hit" 0 s.Runner.Store.hits;
      Alcotest.(check bool) "re-simulated identical" true (run_fields a = run_fields b))

let () =
  Alcotest.run "supervise"
    [
      ( "pool",
        [
          Alcotest.test_case "all ok" `Quick test_all_ok;
          Alcotest.test_case "real crash contained" `Quick test_real_crash_contained;
          Alcotest.test_case "injected faults match plan" `Quick
            test_injected_faults_match_plan;
          Alcotest.test_case "retry recovers bit-identical" `Quick
            test_retry_recovers_bit_identical;
          Alcotest.test_case "exhausted retries fault" `Quick
            test_exhausted_retries_fault;
          Alcotest.test_case "jobs invariance" `Quick test_supervised_jobs_invariance;
          Alcotest.test_case "seeded plan deterministic" `Quick
            test_seeded_plan_deterministic;
          Alcotest.test_case "sliced slow respects deadline" `Quick
            test_sliced_slow_respects_deadline;
        ] );
      ( "batched",
        [
          Alcotest.test_case "mid-chunk crash isolated" `Quick
            test_batched_mid_chunk_crash_isolated;
          Alcotest.test_case "batched matches unbatched" `Quick
            test_batched_supervised_matches_unbatched;
        ] );
      ( "stats",
        [
          Alcotest.test_case "faulted stats discarded" `Quick test_stats_discard_faulted;
          Alcotest.test_case "healthy merge matches plain" `Quick
            test_stats_supervised_matches_plain_when_healthy;
        ] );
      ( "security",
        [
          Alcotest.test_case "sweep degrades gracefully" `Quick
            test_security_sweep_supervised_degrades;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "corrupt entry discarded" `Quick
            test_store_discards_corrupt_entry;
          Alcotest.test_case "digest mismatch rejected" `Quick
            test_store_rejects_version_and_digest_mismatch;
          Alcotest.test_case "killed-then-resumed sweep" `Quick
            test_killed_then_resumed_sweep;
          Alcotest.test_case "injected cache truncation" `Quick
            test_injected_cache_truncation;
          Alcotest.test_case "prefetch records faults" `Quick
            test_prefetch_supervised_records_faults;
          Alcotest.test_case "stale tmp reclaimed" `Quick test_tmp_reclamation;
          Alcotest.test_case "marshal guard on digest-valid entry" `Quick
            test_store_marshal_guard;
        ] );
    ]
