(* The parallel sweep engine's contract: a sweep at jobs>=2 is
   bit-identical to the serial jobs=1 run.

   - determinism: (workload x variant) simulations and the security
     sweep produce identical counters/histograms/cycle counts at any
     job count;
   - differential: the functional engine and the timing pipeline agree
     on committed architectural side effects, and all CHEx86 variants
     agree on final memory state for benign programs (qcheck-generated
     mini-programs feed the same oracle);
   - qcheck laws for the lib/stats merge APIs;
   - regression tests for the shared-mutable-state hazards the parallel
     run exposed (the Runner memo table) and for cross-domain RNG
     stream stability. *)

module Runner = Chex86_harness.Runner
module Security = Chex86_harness.Security
module Pool = Chex86_harness.Pool
module W = Chex86_workloads.Workloads
module Counter = Chex86_stats.Counter
module Histogram = Chex86_stats.Histogram
module Rng = Chex86_stats.Rng

open Chex86_isa
open Insn

(* --- qcheck: Counter snapshot/merge laws --------------------------------- *)

let group_of_events events =
  let g = Counter.create_group () in
  List.iter (fun (name, by) -> Counter.incr ~by g name) events;
  g

let events_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 30)
      (pair (oneofl [ "a"; "b"; "c"; "cap.hit"; "cap.miss" ]) (int_range 0 1000)))

let snap_list s = Counter.snapshot_to_list s

let qcheck_counter_merge_commutative =
  QCheck.Test.make ~name:"Counter.merge is commutative" (QCheck.pair events_gen events_gen)
    (fun (ea, eb) ->
      let a = Counter.group_snapshot (group_of_events ea)
      and b = Counter.group_snapshot (group_of_events eb) in
      snap_list (Counter.merge a b) = snap_list (Counter.merge b a))

let qcheck_counter_merge_associative =
  QCheck.Test.make ~name:"Counter.merge is associative"
    (QCheck.triple events_gen events_gen events_gen)
    (fun (ea, eb, ec) ->
      let a = Counter.group_snapshot (group_of_events ea)
      and b = Counter.group_snapshot (group_of_events eb)
      and c = Counter.group_snapshot (group_of_events ec) in
      snap_list (Counter.merge (Counter.merge a b) c)
      = snap_list (Counter.merge a (Counter.merge b c)))

let qcheck_counter_merge_identity =
  QCheck.Test.make ~name:"Counter.empty_snapshot is the merge identity" events_gen
    (fun events ->
      let s = Counter.group_snapshot (group_of_events events) in
      snap_list (Counter.merge s Counter.empty_snapshot) = snap_list s
      && snap_list (Counter.merge Counter.empty_snapshot s) = snap_list s)

let qcheck_counter_merge_is_sequential_accumulation =
  QCheck.Test.make
    ~name:"merge (snapshot a) (snapshot b) = snapshot of sequential accumulation"
    (QCheck.pair events_gen events_gen)
    (fun (ea, eb) ->
      let merged =
        Counter.merge
          (Counter.group_snapshot (group_of_events ea))
          (Counter.group_snapshot (group_of_events eb))
      in
      let sequential = group_of_events (ea @ eb) in
      snap_list merged = snap_list (Counter.group_snapshot sequential))

let qcheck_counter_absorb_roundtrip =
  QCheck.Test.make ~name:"absorb/of_snapshot round-trips" events_gen (fun events ->
      let g = group_of_events events in
      let copy = Counter.of_snapshot (Counter.group_snapshot g) in
      Counter.to_list copy = Counter.to_list g)

(* --- qcheck: Histogram snapshot/merge laws -------------------------------- *)

let hist_of_samples samples =
  let h = Histogram.create () in
  List.iter (fun (v, w) -> Histogram.add ~weight:w h v) samples;
  h

let samples_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 30) (pair (int_range (-50) 50) (int_range 1 20)))

let hsnap_list s = Histogram.snapshot_to_list s

let hist_equal a b =
  Histogram.sorted a = Histogram.sorted b
  && Histogram.count a = Histogram.count b
  && Histogram.total a = Histogram.total b
  && Histogram.min_value a = Histogram.min_value b
  && Histogram.max_value a = Histogram.max_value b

let qcheck_histogram_merge_commutative =
  QCheck.Test.make ~name:"Histogram.merge is commutative"
    (QCheck.pair samples_gen samples_gen)
    (fun (sa, sb) ->
      let a = Histogram.snapshot (hist_of_samples sa)
      and b = Histogram.snapshot (hist_of_samples sb) in
      hsnap_list (Histogram.merge a b) = hsnap_list (Histogram.merge b a))

let qcheck_histogram_merge_associative =
  QCheck.Test.make ~name:"Histogram.merge is associative"
    (QCheck.triple samples_gen samples_gen samples_gen)
    (fun (sa, sb, sc) ->
      let a = Histogram.snapshot (hist_of_samples sa)
      and b = Histogram.snapshot (hist_of_samples sb)
      and c = Histogram.snapshot (hist_of_samples sc) in
      hsnap_list (Histogram.merge (Histogram.merge a b) c)
      = hsnap_list (Histogram.merge a (Histogram.merge b c)))

let qcheck_histogram_merge_identity =
  QCheck.Test.make ~name:"Histogram.empty_snapshot is the merge identity" samples_gen
    (fun samples ->
      let s = Histogram.snapshot (hist_of_samples samples) in
      hsnap_list (Histogram.merge s Histogram.empty_snapshot) = hsnap_list s
      && hsnap_list (Histogram.merge Histogram.empty_snapshot s) = hsnap_list s)

let qcheck_histogram_merge_is_sequential_accumulation =
  QCheck.Test.make
    ~name:"merged histogram = sequentially accumulated histogram"
    (QCheck.pair samples_gen samples_gen)
    (fun (sa, sb) ->
      let merged =
        Histogram.of_snapshot
          (Histogram.merge
             (Histogram.snapshot (hist_of_samples sa))
             (Histogram.snapshot (hist_of_samples sb)))
      in
      hist_equal merged (hist_of_samples (sa @ sb)))

(* --- run equality ---------------------------------------------------------- *)

let check_run_equal label (a : Runner.run) (b : Runner.run) =
  let check what = Alcotest.(check int) (label ^ ": " ^ what) in
  Alcotest.(check bool) (label ^ ": outcome") true (a.Runner.outcome = b.Runner.outcome);
  check "macro_insns" a.Runner.macro_insns b.Runner.macro_insns;
  check "uops" a.Runner.uops b.Runner.uops;
  check "uops_injected" a.Runner.uops_injected b.Runner.uops_injected;
  check "uops_killed" a.Runner.uops_killed b.Runner.uops_killed;
  check "cycles" a.Runner.cycles b.Runner.cycles;
  check "shadow_bytes" a.Runner.shadow_bytes b.Runner.shadow_bytes;
  check "resident_bytes" a.Runner.resident_bytes b.Runner.resident_bytes;
  check "mem_bytes" a.Runner.mem_bytes b.Runner.mem_bytes;
  Alcotest.(check bool) (label ^ ": pwned") a.Runner.pwned b.Runner.pwned;
  Alcotest.(check bool) (label ^ ": profile") true (a.Runner.profile = b.Runner.profile);
  Alcotest.(check (list (pair string int)))
    (label ^ ": every counter")
    (Counter.to_list a.Runner.counters)
    (Counter.to_list b.Runner.counters)

(* --- determinism: parallel sweep == serial sweep --------------------------- *)

let sweep_configs =
  [
    ("insecure", Runner.insecure);
    ("hardware", Runner.Chex (Chex86.Variant.make Chex86.Variant.Hardware_only));
    ("bt", Runner.Chex (Chex86.Variant.make Chex86.Variant.Binary_translation));
    ("always-on", Runner.Chex (Chex86.Variant.make Chex86.Variant.Microcode_always_on));
    ("prediction", Runner.prediction);
    ("asan", Runner.Asan);
  ]

let sweep_workloads = [ "mcf"; "swaptions"; "canneal" ]

(* All 6 variants on 3 representative workloads, simulated through the
   pool (bypassing the memo) at jobs=1 and jobs=4: every counter,
   histogram-backed stat and cycle count must be bit-identical. *)
let test_sweep_determinism () =
  let tasks =
    List.concat_map
      (fun wname ->
        List.map (fun (cname, config) -> (wname, cname, config)) sweep_configs)
      sweep_workloads
    |> Array.of_list
  in
  let simulate (wname, _, config) =
    Runner.run_program config ((W.find wname).build ~scale:1)
  in
  let serial = Pool.map ~jobs:1 simulate tasks in
  let parallel = Pool.map ~jobs:4 simulate tasks in
  Array.iteri
    (fun i (wname, cname, _) ->
      check_run_equal (wname ^ "/" ^ cname) serial.(i) parallel.(i))
    tasks

(* [pool.chunks] records the dispatch rounds actually paid, so it is the
   one counter allowed to vary with the (jobs, batch) geometry;
   determinism comparisons drop it (pool.mli documents this contract). *)
let drop_chunks counters =
  List.filter (fun (name, _) -> name <> "pool.chunks") counters

(* The security sweep: sharded over 4 domains at several batch sizes vs
   serial, with the merged stats compared bucket by bucket. This is the
   acceptance criterion for batched dispatch: --jobs N --batch-size B is
   byte-identical to serial for B in {1, 8, 32}. *)
let test_security_sweep_determinism () =
  let subset = List.filteri (fun i _ -> i mod 19 = 0) Chex86_exploits.Exploits.all in
  Alcotest.(check bool) "subset is representative" true (List.length subset >= 40);
  let serial, sstats = Security.sweep_stats ~jobs:1 ~batch_size:1 subset in
  Alcotest.(check int) "every exploit in the subset blocked"
    (List.length subset)
    (Counter.get sstats.Pool.counters "sweep.blocked");
  List.iter
    (fun batch ->
      let parallel, pstats = Security.sweep_stats ~jobs:4 ~batch_size:batch subset in
      let label what =
        Printf.sprintf "batch=%d: %s" batch what
      in
      List.iter2
        (fun (a : Security.result) (b : Security.result) ->
          Alcotest.(check string) (label "same exploit order")
            a.exploit.Chex86_exploits.Exploit.name b.exploit.Chex86_exploits.Exploit.name;
          check_run_equal
            (label ("security/" ^ a.exploit.Chex86_exploits.Exploit.name))
            a.under_protection b.under_protection)
        serial parallel;
      Alcotest.(check (list (pair string int)))
        (label "merged sweep counters identical")
        (drop_chunks (Counter.to_list sstats.Pool.counters))
        (drop_chunks (Counter.to_list pstats.Pool.counters));
      Alcotest.(check bool) (label "merged sweep histograms identical") true
        (List.for_all2
           (fun (na, ha) (nb, hb) -> na = nb && hist_equal ha hb)
           sstats.Pool.histograms pstats.Pool.histograms);
      Alcotest.(check int)
        (label "pool.chunks = ceil(n/batch)")
        ((List.length subset + batch - 1) / batch)
        (Counter.get pstats.Pool.counters "pool.chunks"))
    [ 1; 8; 32 ]

(* Pool.map_stats: per-task RNG streams are seeded from the task key, so
   neither task results nor merged stats may depend on the job count. *)
let test_pool_ctx_determinism () =
  let tasks = Array.init 32 (fun i -> Printf.sprintf "task-%02d" i) in
  let body key (ctx : Pool.ctx) =
    Alcotest.(check string) "ctx carries the task key" key ctx.Pool.key;
    let draws = List.init 16 (fun _ -> Rng.int ctx.Pool.rng 1000) in
    List.iter
      (fun v ->
        Counter.incr ~by:v ctx.Pool.counters "drawn.sum";
        Histogram.add (ctx.Pool.histogram "drawn") v)
      draws;
    draws
  in
  let serial, sstats = Pool.map_stats ~jobs:1 ~key:Fun.id body tasks in
  let parallel, pstats = Pool.map_stats ~jobs:4 ~key:Fun.id body tasks in
  Alcotest.(check bool) "identical per-task RNG draws" true (serial = parallel);
  Alcotest.(check (list (pair string int)))
    "identical merged counters"
    (Counter.to_list sstats.Pool.counters)
    (Counter.to_list pstats.Pool.counters);
  Alcotest.(check bool) "identical merged histograms" true
    (List.for_all2
       (fun (na, ha) (nb, hb) -> na = nb && hist_equal ha hb)
       sstats.Pool.histograms pstats.Pool.histograms)

(* --- batched dispatch ------------------------------------------------------ *)

(* Synthetic stats-heavy body shared by the batching tests: RNG draws
   keyed off the task key, folded into counters and a histogram. Any
   scheduling dependence (worker identity, chunk geometry) would show
   up in the draws or the merged stats. *)
let batched_body key (ctx : Pool.ctx) =
  let draws = List.init 12 (fun _ -> Rng.int ctx.Pool.rng 1000) in
  List.iter
    (fun v ->
      Counter.incr ~by:v ctx.Pool.counters "drawn.sum";
      Counter.incr ctx.Pool.counters ("drawn.bucket." ^ string_of_int (v mod 3));
      Histogram.add (ctx.Pool.histogram "drawn") v)
    draws;
  (key, draws)

(* qcheck: ANY (jobs, batch_size) pair is byte-identical to the serial
   jobs=1/batch=1 run — results, merged counters (minus pool.chunks)
   and merged histograms. *)
let qcheck_batched_geometry_immaterial =
  let tasks = Array.init 37 (fun i -> Printf.sprintf "task-%02d" i) in
  let serial, sstats = Pool.map_stats_batched ~jobs:1 ~batch_size:1 ~key:Fun.id batched_body tasks in
  QCheck.Test.make ~count:30
    ~name:"map_stats_batched: any (jobs, batch_size) = serial"
    QCheck.(pair (int_range 1 6) (int_range 1 48))
    (fun (jobs, batch) ->
      let parallel, pstats =
        Pool.map_stats_batched ~jobs ~batch_size:batch ~key:Fun.id batched_body tasks
      in
      serial = parallel
      && drop_chunks (Counter.to_list sstats.Pool.counters)
         = drop_chunks (Counter.to_list pstats.Pool.counters)
      && List.for_all2
           (fun (na, ha) (nb, hb) -> na = nb && hist_equal ha hb)
           sstats.Pool.histograms pstats.Pool.histograms
      && Counter.get pstats.Pool.counters "pool.chunks" = (37 + batch - 1) / batch)

(* map_batched agrees with map (values only, no stats plumbing), and a
   mid-chunk exception still reports the lowest-index failure. *)
let test_map_batched_basics () =
  let tasks = Array.init 100 (fun i -> i) in
  List.iter
    (fun batch ->
      let got = Pool.map_batched ~jobs:4 ~batch_size:batch (fun i -> 3 * i) tasks in
      Alcotest.(check bool)
        (Printf.sprintf "batch=%d order preserved" batch)
        true
        (got = Array.init 100 (fun i -> 3 * i)))
    [ 1; 7; 64; 200 ];
  let exn =
    try
      ignore
        (Pool.map_batched ~jobs:4 ~batch_size:16
           (fun i -> if i >= 40 then failwith (string_of_int i) else i)
           tasks);
      None
    with Failure msg -> Some msg
  in
  Alcotest.(check (option string)) "lowest-index failure reported" (Some "40") exn

(* Auto batch sizing: about four chunks per worker, clamped to [1, 64];
   fewer dispatch rounds as the batch grows. *)
let test_auto_batch_size () =
  Alcotest.(check int) "empty input" 1 (Pool.auto_batch_size ~jobs:4 0);
  Alcotest.(check int) "small input stays per-task" 1 (Pool.auto_batch_size ~jobs:4 16);
  Alcotest.(check int) "864 tasks over 4 jobs" 54 (Pool.auto_batch_size ~jobs:4 864);
  Alcotest.(check int) "clamped above" 64 (Pool.auto_batch_size ~jobs:1 100_000);
  let chunks_at batch =
    let tasks = Array.init 64 (fun i -> Printf.sprintf "t%02d" i) in
    let _, stats = Pool.map_stats_batched ~jobs:2 ~batch_size:batch ~key:Fun.id batched_body tasks in
    Counter.get stats.Pool.counters "pool.chunks"
  in
  Alcotest.(check int) "batch=1 pays one chunk per task" 64 (chunks_at 1);
  Alcotest.(check int) "batch=8 pays 8 chunks" 8 (chunks_at 8);
  Alcotest.(check int) "batch=32 pays 2 chunks" 2 (chunks_at 32);
  Alcotest.(check bool) "chunks drop as the batch grows" true
    (chunks_at 1 > chunks_at 8 && chunks_at 8 > chunks_at 32)

(* --- differential: functional engine vs timing pipeline -------------------- *)

(* The timing model replays the functional engine's committed stream, so
   committed architectural side effects must agree exactly: retired
   macro-ops, decoded/injected/killed micro-ops, the outcome, and the
   exploit pwned flag. *)
let test_functional_vs_timing () =
  List.iter
    (fun wname ->
      let w = W.find wname in
      List.iter
        (fun (cname, config) ->
          let functional = Runner.run_program ~timing:false config (w.build ~scale:1) in
          let timed = Runner.run_program ~timing:true config (w.build ~scale:1) in
          let label = wname ^ "/" ^ cname in
          Alcotest.(check int) (label ^ ": retired macro-ops")
            functional.Runner.macro_insns timed.Runner.macro_insns;
          (* uop accounting lives in the timing pipeline; the functional
             engine reports zero by contract. *)
          Alcotest.(check int) (label ^ ": functional uops are 0") 0
            functional.Runner.uops;
          Alcotest.(check bool) (label ^ ": timing decoded uops") true
            (timed.Runner.uops >= timed.Runner.macro_insns);
          Alcotest.(check bool) (label ^ ": outcome") true
            (functional.Runner.outcome = timed.Runner.outcome);
          Alcotest.(check bool) (label ^ ": pwned")
            functional.Runner.pwned timed.Runner.pwned;
          Alcotest.(check bool) (label ^ ": timing produced cycles") true
            (timed.Runner.cycles > 0 && functional.Runner.cycles = 0))
        [ ("insecure", Runner.insecure); ("prediction", Runner.prediction) ])
    sweep_workloads

let chex_variants =
  [
    ("insecure", Chex86.Variant.make Chex86.Variant.Insecure);
    ("hardware", Chex86.Variant.make Chex86.Variant.Hardware_only);
    ("bt", Chex86.Variant.make Chex86.Variant.Binary_translation);
    ("always-on", Chex86.Variant.make Chex86.Variant.Microcode_always_on);
    ("prediction", Chex86.Variant.default);
  ]

let final_globals program (proc : Chex86_os.Process.t) =
  List.concat_map
    (fun (g : Program.global) ->
      List.init (g.size / 8) (fun i ->
          (g.name, i, Chex86_mem.Image.read64 proc.Chex86_os.Process.mem (g.addr + (8 * i)))))
    program.Program.globals

(* Protection must be observationally transparent on benign programs:
   every CHEx86 variant commits the same final heap/global state and the
   same retired instruction count as the insecure baseline. *)
let test_variants_agree_on_architectural_state () =
  List.iter
    (fun wname ->
      let w = W.find wname in
      let runs =
        List.map
          (fun (cname, variant) ->
            let program = w.build ~scale:1 in
            let run = Chex86.Sim.run ~variant ~timing:false program in
            (cname, program, run))
          chex_variants
      in
      let _, ref_program, ref_run = List.hd runs in
      let reference = final_globals ref_program ref_run.Chex86.Sim.proc in
      List.iter
        (fun (cname, program, run) ->
          let label = wname ^ "/" ^ cname in
          Alcotest.(check bool) (label ^ ": completed") true
            (run.Chex86.Sim.outcome = Chex86.Sim.Completed);
          Alcotest.(check int) (label ^ ": retired macro-ops")
            ref_run.Chex86.Sim.result.Chex86_machine.Simulator.macro_insns
            run.Chex86.Sim.result.Chex86_machine.Simulator.macro_insns;
          List.iter2
            (fun (name, i, expect) (name', i', got) ->
              if not (name = name' && i = i' && expect = got) then
                Alcotest.failf "%s: global %s[%d] = %d, expected %s[%d] = %d" label
                  name' i' got name i expect)
            reference
            (final_globals program run.Chex86.Sim.proc))
        runs)
    sweep_workloads

(* --- qcheck differential oracle over generated mini-programs --------------- *)

(* A mini-program is a list of abstract ops lowered through the Asm DSL:
   register arithmetic, stores/loads on a scratch global, and bounded
   heap episodes (malloc/store/load/free).  The checksum never folds in
   a heap address, so the final [result] global must agree across every
   protection configuration, including ASan's redzone allocator. *)
type mini_op =
  | Arith of Insn.alu * Reg.t * Reg.t
  | Arith_imm of Insn.alu * Reg.t * int
  | Store of Reg.t * int  (* scratch slot *)
  | Load of Reg.t * int
  | Heap of { size : int; off : int; value : int }

let mini_regs = [| Reg.RAX; Reg.RBX; Reg.RCX; Reg.RDX |]
let mini_alus = [| Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor |]

let mini_op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun op a b -> Arith (mini_alus.(op), mini_regs.(a), mini_regs.(b)))
            (int_range 0 4) (int_range 0 3) (int_range 0 3) );
        ( 2,
          map3
            (fun op r k -> Arith_imm (mini_alus.(op), mini_regs.(r), k))
            (int_range 0 4) (int_range 0 3) (int_range 0 255) );
        (2, map2 (fun r slot -> Store (mini_regs.(r), slot)) (int_range 0 3) (int_range 0 7));
        (2, map2 (fun r slot -> Load (mini_regs.(r), slot)) (int_range 0 3) (int_range 0 7));
        ( 1,
          map3
            (fun size_pick off_pick value ->
              let size = if size_pick then 32 else 64 in
              Heap { size; off = 8 * (off_pick mod (size / 8)); value })
            bool (int_range 0 7) (int_range 1 10_000) );
      ])

let mini_program_gen = QCheck.Gen.(list_size (int_range 1 24) mini_op_gen)

let build_mini_program ops =
  let b = Asm.create () in
  let result = Asm.global b "result" 8 in
  let scratch = Asm.global b "scratch" 64 in
  Asm.label b "_start";
  Asm.emit b (Mov (W64, Reg RAX, Imm 0x1234));
  Asm.emit b (Mov (W64, Reg RBX, Imm 0x5678));
  Asm.emit b (Mov (W64, Reg RCX, Imm 0x9abc));
  Asm.emit b (Mov (W64, Reg RDX, Imm 0xdef0));
  List.iter
    (fun op ->
      match op with
      | Arith (alu, dst, src) -> Asm.emit b (Alu (alu, Reg dst, Reg src))
      | Arith_imm (alu, dst, k) -> Asm.emit b (Alu (alu, Reg dst, Imm k))
      | Store (r, slot) -> Asm.emit b (Mov (W64, Mem (mem_abs (scratch + (8 * slot))), Reg r))
      | Load (r, slot) -> Asm.emit b (Mov (W64, Reg r, Mem (mem_abs (scratch + (8 * slot)))))
      | Heap { size; off; value } ->
        (* malloc clobbers rax/rdi: spill the checksum register. *)
        Asm.emit b (Mov (W64, Mem (mem_abs scratch), Reg RAX));
        Asm.call_malloc b size;
        Asm.emit b (Mov (W64, Reg R12, Reg RAX));
        Asm.emit b (Mov (W64, Mem (mem ~base:R12 ~disp:off ()), Imm value));
        Asm.emit b (Mov (W64, Reg RCX, Mem (mem ~base:R12 ~disp:off ())));
        Asm.call_free b R12;
        Asm.emit b (Mov (W64, Reg RAX, Mem (mem_abs scratch))))
    ops;
  Asm.emit b (Alu (Add, Reg RAX, Reg RBX));
  Asm.emit b (Alu (Xor, Reg RAX, Reg RCX));
  Asm.emit b (Alu (Add, Reg RAX, Reg RDX));
  Asm.emit b (Mov (W64, Mem (mem_abs result), Reg RAX));
  Asm.emit b Halt;
  Asm.build b

let mini_result program (proc : Chex86_os.Process.t) =
  Chex86_mem.Image.read64 proc.Chex86_os.Process.mem (Program.global_addr program "result")

let qcheck_mini_program_differential =
  QCheck.Test.make ~count:40 ~name:"mini-programs: same oracle across all configurations"
    (QCheck.make mini_program_gen)
    (fun ops ->
      (* Reference: functional run on the insecure baseline. *)
      let reference =
        let program = build_mini_program ops in
        let run =
          Chex86.Sim.run
            ~variant:(Chex86.Variant.make Chex86.Variant.Insecure)
            ~timing:false program
        in
        if run.Chex86.Sim.outcome <> Chex86.Sim.Completed then
          QCheck.Test.fail_report "insecure baseline did not complete";
        ( mini_result program run.Chex86.Sim.proc,
          run.Chex86.Sim.result.Chex86_machine.Simulator.macro_insns )
      in
      let ref_result, ref_insns = reference in
      (* Every CHEx86 variant, functional and timed, agrees. *)
      List.for_all
        (fun (_, variant) ->
          List.for_all
            (fun timing ->
              let program = build_mini_program ops in
              let run = Chex86.Sim.run ~variant ~timing program in
              run.Chex86.Sim.outcome = Chex86.Sim.Completed
              && mini_result program run.Chex86.Sim.proc = ref_result
              && run.Chex86.Sim.result.Chex86_machine.Simulator.macro_insns = ref_insns)
            [ false; true ])
        chex_variants
      (* ...and so does the ASan baseline (different allocator, same
         architectural answer). *)
      && begin
        let program = build_mini_program ops in
        let _, result, proc = Chex86_asan.Asan_monitor.run ~timing:false program in
        result.Chex86_machine.Simulator.outcome = Chex86_machine.Simulator.Finished
        && mini_result program proc = ref_result
        && result.Chex86_machine.Simulator.macro_insns = ref_insns
      end)

(* --- regression: shared-mutable-state hazards ------------------------------ *)

(* The Runner memo is the harness's only module-level mutable state; it
   used to be an unsynchronized Hashtbl.  Hammer it from 4 domains with
   colliding keys: every call must return the one canonical run object
   and the table must stay consistent. *)
let test_memo_domain_safety () =
  let tasks =
    Array.init 32 (fun i ->
        let wname = List.nth sweep_workloads (i mod 3) in
        let config = if i mod 2 = 0 then Runner.insecure else Runner.prediction in
        (wname, config))
  in
  let results =
    Pool.map ~jobs:4
      (fun (wname, config) ->
        Runner.run_workload ~tag:"memo-race" ~timing:false ~scale:1 config (W.find wname))
      tasks
  in
  Array.iteri
    (fun i (wname, config) ->
      let canonical =
        Runner.run_workload ~tag:"memo-race" ~timing:false ~scale:1 config (W.find wname)
      in
      Alcotest.(check bool)
        (Printf.sprintf "task %d (%s) got the memoized run" i wname)
        true
        (results.(i) == canonical))
    tasks

(* Rng streams are per-instance; two domains drawing from equal seeds
   must see the serial streams (no hidden global state). *)
let test_rng_streams_domain_independent () =
  let seeds = Array.init 8 (fun i -> 1000 + i) in
  let draw seed =
    let rng = Rng.create seed in
    List.init 64 (fun _ -> Rng.next_int64 rng)
  in
  let serial = Array.map draw seeds in
  let parallel = Pool.map ~jobs:4 draw seeds in
  Alcotest.(check bool) "identical streams" true (serial = parallel)

(* Pool.seed_of_key is part of the determinism contract: pin it. *)
let test_seed_of_key_stable () =
  Alcotest.(check bool) "distinct keys, distinct seeds" true
    (Pool.seed_of_key "mcf/insecure" <> Pool.seed_of_key "mcf/prediction");
  Alcotest.(check int) "stable across calls" (Pool.seed_of_key "mcf/insecure")
    (Pool.seed_of_key "mcf/insecure");
  Alcotest.(check bool) "non-negative" true (Pool.seed_of_key "" >= 0)

(* Pool.map must preserve task order and propagate failures
   deterministically (lowest-index failure wins). *)
let test_pool_map_basics () =
  let tasks = Array.init 100 (fun i -> i) in
  let doubled = Pool.map ~jobs:4 (fun i -> 2 * i) tasks in
  Alcotest.(check bool) "order preserved" true
    (doubled = Array.init 100 (fun i -> 2 * i));
  let exn =
    try
      ignore (Pool.map ~jobs:4 (fun i -> if i >= 40 then failwith (string_of_int i) else i) tasks);
      None
    with Failure msg -> Some msg
  in
  Alcotest.(check (option string)) "lowest-index failure reported" (Some "40") exn

let () =
  Alcotest.run "parallel"
    [
      ( "counter-merge",
        [
          QCheck_alcotest.to_alcotest qcheck_counter_merge_commutative;
          QCheck_alcotest.to_alcotest qcheck_counter_merge_associative;
          QCheck_alcotest.to_alcotest qcheck_counter_merge_identity;
          QCheck_alcotest.to_alcotest qcheck_counter_merge_is_sequential_accumulation;
          QCheck_alcotest.to_alcotest qcheck_counter_absorb_roundtrip;
        ] );
      ( "histogram-merge",
        [
          QCheck_alcotest.to_alcotest qcheck_histogram_merge_commutative;
          QCheck_alcotest.to_alcotest qcheck_histogram_merge_associative;
          QCheck_alcotest.to_alcotest qcheck_histogram_merge_identity;
          QCheck_alcotest.to_alcotest qcheck_histogram_merge_is_sequential_accumulation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map basics" `Quick test_pool_map_basics;
          Alcotest.test_case "seed_of_key stable" `Quick test_seed_of_key_stable;
          Alcotest.test_case "ctx determinism" `Quick test_pool_ctx_determinism;
        ] );
      ( "batched",
        [
          Alcotest.test_case "map_batched basics" `Quick test_map_batched_basics;
          Alcotest.test_case "auto batch sizing" `Quick test_auto_batch_size;
          QCheck_alcotest.to_alcotest qcheck_batched_geometry_immaterial;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep jobs=1 == jobs=4" `Slow test_sweep_determinism;
          Alcotest.test_case "security sweep jobs=1 == jobs=4" `Slow
            test_security_sweep_determinism;
        ] );
      ( "differential",
        [
          Alcotest.test_case "functional vs timing" `Slow test_functional_vs_timing;
          Alcotest.test_case "variants agree on final state" `Slow
            test_variants_agree_on_architectural_state;
          QCheck_alcotest.to_alcotest qcheck_mini_program_differential;
        ] );
      ( "shared-state-regressions",
        [
          Alcotest.test_case "runner memo is domain-safe" `Quick test_memo_domain_safety;
          Alcotest.test_case "rng streams domain-independent" `Quick
            test_rng_streams_domain_independent;
        ] );
    ]
