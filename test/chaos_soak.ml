(* Kill/resume chaos soak for the on-disk result store.

   Soak mode (the default) machine-checks the store's crash model: a
   sweep may be SIGKILLed at any named injection point of the publish
   protocol and a plain re-run must converge to byte-identical output
   with a clean fsck. For each geometry (serial / --jobs 2 /
   --workers 2) it records a fault-free reference run, then drives
   [--legs] randomized legs: fresh cache dir, a run with
   CHEX86_FAULT_POINT=<point>=kill@<ordinal> in the environment
   (expected to die by SIGKILL — in the workers geometry the point may
   instead fire inside worker processes, which the supervisor absorbs),
   a fault-free resume, and the assertions

     - the resume exits 0 with stdout byte-identical to the reference
       (modulo the wall-clock [name: N.Ns] timing trailers, which are
       inherently nondeterministic and normalized away);
     - [Runner.Store.fsck] reports zero invariant violations.

   The PRNG is seeded ([--seed]) so a failing leg reproduces exactly.
   A JSON report of every leg goes to [--report FILE].

   Hammer mode ([--hammer DIR SEED SHARED DISJOINT]) is the
   multi-process writer child used by test_store.ml: after waiting for
   the DIR/go start barrier it publishes SHARED contested keys (the
   same in every child) and DISJOINT private ones straight through
   [Runner.Store.save], then prints its publish counters on stdout for
   the parent to cross-check the exactly-one-winner-per-key invariant. *)

module Runner = Chex86_harness.Runner
module Json = Chex86_stats.Json

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "chaos_soak: %s\n%!" msg;
      exit 2)
    fmt

(* --- hammer mode ----------------------------------------------------------- *)

let dummy_run i : Runner.run =
  {
    Runner.outcome = Runner.Completed;
    macro_insns = 1000 + i;
    uops = 2000 + i;
    uops_injected = i;
    uops_killed = 0;
    cycles = 3000 + i;
    counters = Chex86_stats.Counter.create_group ();
    shadow_bytes = 64;
    resident_bytes = 4096;
    mem_bytes = 512;
    pwned = false;
    profile = None;
  }

let hammer dir seed shared disjoint =
  Runner.Store.configure ~dir;
  (* Start barrier: racing children must actually overlap, not run one
     after the other because process spawn is slow. *)
  let go = Filename.concat dir "go" in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Sys.file_exists go)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  if not (Sys.file_exists go) then die "hammer: start barrier %s never appeared" go;
  (* Interleave contested and private keys so the children spend the
     whole run racing, not just the first publish. *)
  let rounds = max shared disjoint in
  for i = 0 to rounds - 1 do
    if i < shared then
      Runner.Store.save ~key:(Printf.sprintf "shared-%d" i) ~digest:"hammer"
        (dummy_run i);
    if i < disjoint then
      Runner.Store.save ~key:(Printf.sprintf "own-%d-%d" seed i) ~digest:"hammer"
        (dummy_run (100 + (seed * 1000) + i))
  done;
  let s = Runner.Store.stats () in
  Printf.printf "writes=%d race_lost=%d hits=%d quarantined=%d write_errors=%d\n%!"
    s.Runner.Store.writes s.Runner.Store.race_lost s.Runner.Store.hits
    s.Runner.Store.quarantined s.Runner.Store.write_errors;
  exit 0

(* --- soak mode -------------------------------------------------------------- *)

(* The swept executable: bench/main.exe figure6 over a small workload
   set — 12 tasks, 12 store publishes on a cold cache. *)
let bench_exe () =
  match Sys.getenv_opt "CHEX86_BENCH_EXE" with
  | Some p when p <> "" -> p
  | _ -> (
    let dir = Filename.dirname Sys.executable_name in
    let candidate =
      Filename.concat dir (Filename.concat ".." (Filename.concat "bench" "main.exe"))
    in
    match Sys.file_exists candidate with
    | true -> candidate
    | false -> die "cannot find bench/main.exe (set CHEX86_BENCH_EXE)")

let geometries =
  [
    ("serial", [ "--jobs"; "1" ]);
    ("jobs2", [ "--jobs"; "2" ]);
    ("workers2", [ "--jobs"; "1"; "--workers"; "2" ]);
  ]

(* Kill-able points of the publish protocol; load.pre_read covers the
   resume-side read path too. *)
let kill_points =
  [
    "store.publish.pre_write";
    "store.publish.mid_write";
    "store.publish.pre_rename";
    "store.publish.post_rename";
    "store.load.pre_read";
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Environment for a swept child: the current env minus any fault
   variables, plus the workload pinning and whatever [extra] adds. *)
let child_env extra =
  let keep e =
    let fault k = String.length e >= String.length k && String.sub e 0 (String.length k) = k in
    not
      (fault "CHEX86_FAULT_RATE=" || fault "CHEX86_FAULT_SEED="
      || fault "CHEX86_FAULT_KIND=" || fault "CHEX86_FAULT_POINT="
      || fault "CHEX86_WORKLOADS=" || fault "CHEX86_SCALE=")
  in
  Array.of_list
    (List.filter keep (Array.to_list (Unix.environment ()))
    @ [ "CHEX86_WORKLOADS=mcf,canneal"; "CHEX86_SCALE=1" ]
    @ extra)

(* The bench prints a per-target "[name: N.Ns]" wall-clock trailer;
   everything else in the output is deterministic. Blank the duration so
   reference and resume compare byte-identical on the content that
   matters. *)
let normalize_stdout s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
       let n = String.length line in
       if n >= 6 && line.[0] = '[' && line.[n - 2] = 's' && line.[n - 1] = ']' then
         match String.index_opt line ':' with
         | Some i
           when i + 2 <= n - 2
                && float_of_string_opt
                     (String.trim (String.sub line (i + 1) (n - 2 - (i + 1))))
                   <> None ->
           String.sub line 0 (i + 1) ^ " _s]"
         | _ -> line
       else line)
  |> String.concat "\n"

type outcome = { status : Unix.process_status; stdout : string }

let run_sweep ~cache_dir ~flags ~extra_env =
  let out = Filename.temp_file "chaos" ".out" in
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let argv =
    Array.of_list ([ bench_exe (); "figure6"; "--cache-dir"; cache_dir ] @ flags)
  in
  let pid =
    Unix.create_process_env (bench_exe ()) argv (child_env extra_env) Unix.stdin fd
      devnull
  in
  Unix.close fd;
  Unix.close devnull;
  let _, status = Unix.waitpid [] pid in
  let stdout = read_file out in
  Sys.remove out;
  { status; stdout }

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let soak ~legs ~seed ~report_file ~wanted =
  let scratch =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chex86-chaos-%d" (Unix.getpid ()))
  in
  rm_rf scratch;
  Unix.mkdir scratch 0o755;
  let rng = Random.State.make [| seed |] in
  let failures = ref 0 and kills = ref 0 in
  let leg_reports = ref [] in
  let geoms =
    List.filter (fun (name, _) -> wanted = [] || List.mem name wanted) geometries
  in
  if geoms = [] then die "no geometries selected";
  List.iter
    (fun (geom, flags) ->
      (* Fault-free reference for this geometry (stdout includes a
         [domain pool: N job(s)] line, so references are per-geometry). *)
      let ref_dir = Filename.concat scratch (geom ^ "-ref") in
      let reference = run_sweep ~cache_dir:ref_dir ~flags ~extra_env:[] in
      if reference.status <> Unix.WEXITED 0 then
        die "%s: reference run failed" geom;
      for leg = 1 to legs do
        let point = List.nth kill_points (Random.State.int rng (List.length kill_points)) in
        let ordinal = 1 + Random.State.int rng 8 in
        let dir = Filename.concat scratch (Printf.sprintf "%s-leg%d" geom leg) in
        let spec = Printf.sprintf "%s=kill@%d" point ordinal in
        let killed_run =
          run_sweep ~cache_dir:dir ~flags
            ~extra_env:[ "CHEX86_FAULT_POINT=" ^ spec ]
        in
        let killed = killed_run.status = Unix.WSIGNALED Sys.sigkill in
        if killed then incr kills;
        let resume = run_sweep ~cache_dir:dir ~flags ~extra_env:[] in
        let resume_ok = resume.status = Unix.WEXITED 0 in
        let stdout_match =
          normalize_stdout resume.stdout = normalize_stdout reference.stdout
        in
        let fsck = Runner.Store.fsck ~dir in
        let fsck_clean = Runner.Store.fsck_clean fsck in
        let pass = resume_ok && stdout_match && fsck_clean in
        if not pass then incr failures;
        Printf.printf "%-9s leg %2d  %-32s %s%s\n%!" geom leg spec
          (if pass then "ok" else "FAIL")
          (Printf.sprintf " (killed=%b resume=%b stdout=%b fsck=%b)" killed resume_ok
             stdout_match fsck_clean);
        leg_reports :=
          Json.Obj
            [
              ("geometry", Json.String geom);
              ("leg", Json.Int leg);
              ("point", Json.String point);
              ("ordinal", Json.Int ordinal);
              ("killed", Json.Bool killed);
              ("resume_ok", Json.Bool resume_ok);
              ("stdout_match", Json.Bool stdout_match);
              ("fsck_clean", Json.Bool fsck_clean);
              ("fsck_issues", Json.Int (List.length fsck.Runner.Store.f_issues));
            ]
          :: !leg_reports;
        if pass then rm_rf dir
      done;
      rm_rf ref_dir)
    geoms;
  (* A soak where nothing ever died proves nothing: the points must
     actually fire in at least the single-process geometries. *)
  let total = legs * List.length geoms in
  let sane = !kills > 0 in
  if not sane then Printf.eprintf "chaos_soak: no leg was ever killed — points dead?\n%!";
  (match report_file with
  | None -> ()
  | Some path ->
    let body =
      Json.to_string
        (Json.Obj
           [
             ("legs", Json.Int total);
             ("seed", Json.Int seed);
             ("killed", Json.Int !kills);
             ("failures", Json.Int !failures);
             ("sane", Json.Bool sane);
             ("results", Json.List (List.rev !leg_reports));
           ])
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc body;
        output_char oc '\n'));
  Printf.printf "chaos soak: %d legs, %d killed, %d failures\n%!" total !kills !failures;
  if !failures > 0 || not sane then exit 1;
  rm_rf scratch

(* --- entry ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "--hammer" :: dir :: seed :: shared :: disjoint :: [] -> (
    match
      (int_of_string_opt seed, int_of_string_opt shared, int_of_string_opt disjoint)
    with
    | Some seed, Some shared, Some disjoint -> hammer dir seed shared disjoint
    | _ -> die "usage: chaos_soak --hammer DIR SEED SHARED DISJOINT")
  | _ :: rest ->
    let legs = ref 4 and seed = ref 42 and report = ref None and geoms = ref [] in
    let rec parse = function
      | [] -> ()
      | "--legs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
          legs := n;
          parse rest
        | _ -> die "invalid --legs value %S" v)
      | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n ->
          seed := n;
          parse rest
        | _ -> die "invalid --seed value %S" v)
      | "--report" :: v :: rest ->
        report := Some v;
        parse rest
      | "--geometries" :: v :: rest ->
        geoms := String.split_on_char ',' v;
        parse rest
      | arg :: _ ->
        die "unknown argument %S (usage: chaos_soak [--legs N] [--seed S] [--report FILE] [--geometries a,b] | --hammer DIR SEED SHARED DISJOINT)"
          arg
    in
    parse rest;
    soak ~legs:!legs ~seed:!seed ~report_file:!report ~wanted:!geoms
  | [] -> die "empty argv"
