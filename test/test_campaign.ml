(* Tests for the generated exploit-campaign subsystem (ROADMAP item 5):
   name round-trips, corpus determinism, per-family attack behaviour on
   both allocator personalities, quantum-dependent cross-core races,
   qcheck shrinking to a minimal reproducer, and byte-stable detection
   matrices across sweep geometries. *)

module Campaign = Chex86_exploits.Campaign
module Exploit = Chex86_exploits.Exploit
module Exploits = Chex86_exploits.Exploits
module Security = Chex86_harness.Security
module Runner = Chex86_harness.Runner
module Allocator = Chex86_os.Allocator

let temporal ?(alloc = Allocator.Glibc) attack ~size ~reuse ~offset =
  { Campaign.alloc; shape = Campaign.Temporal { attack; size; reuse; offset } }

let race ?(alloc = Allocator.Glibc) ~cores ~quantum ~free_delay ~use_delay ~write () =
  { Campaign.alloc; shape = Campaign.Race { cores; quantum; free_delay; use_delay; write } }

let eval ?config c = Security.evaluate ?config (Campaign.to_exploit c)

let outcome_name = function
  | Runner.Completed -> "completed"
  | Runner.Blocked kind -> "blocked: " ^ Chex86.Violation.class_name kind
  | Runner.Aborted msg -> "aborted: " ^ msg
  | Runner.Faulted msg -> "faulted: " ^ msg
  | Runner.Budget_exhausted -> "budget exhausted"

let check_blocked_as_expected label (r : Security.result) =
  match r.under_protection.Runner.outcome with
  | Runner.Blocked kind ->
    if not (Exploit.matches r.exploit.Exploit.expected kind) then
      Alcotest.failf "%s: expected %s, detected %s" label
        (Exploit.expected_name r.exploit.Exploit.expected)
        (Chex86.Violation.class_name kind)
  | o -> Alcotest.failf "%s: not blocked (%s)" label (outcome_name o)

(* --- names ----------------------------------------------------------------- *)

let qcheck_name_roundtrip =
  QCheck.Test.make ~name:"campaign names round-trip through of_name" ~count:500
    Campaign.arbitrary (fun c ->
      match Campaign.of_name (Campaign.name c) with
      | Some c' -> c' = c
      | None -> false)

let test_of_name_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s false (Option.is_some (Campaign.of_name s)))
    [
      "how2heap/first_fit"; "campaign"; "campaign/t/zzz.s24.r0.o0.glibc";
      "campaign/t/uafr.s24.r0.o0.tcmalloc"; "campaign/r/c1.q1.f0.u0.w.glibc";
      "campaign/t/uafr.s24.r0.glibc"; "campaign/r/c2.q0.f0.u0.l.seg";
    ]

let test_find_resolves_campaigns () =
  let c = temporal Campaign.Uaf_write ~size:56 ~reuse:2 ~offset:8 in
  let name = Campaign.name c in
  let e = Exploits.find name in
  Alcotest.(check string) "find round-trips the name" name e.Exploit.name;
  Alcotest.(check bool) "suite is Campaign" true (e.Exploit.suite = Exploit.Campaign);
  (* the reconstructed exploit actually builds and runs *)
  check_blocked_as_expected name (Security.evaluate e)

(* --- corpus ---------------------------------------------------------------- *)

let test_corpus_deterministic () =
  let names l = List.map Campaign.name l in
  let a = names (Campaign.corpus ~seed:7 ~per_family:5) in
  let b = names (Campaign.corpus ~seed:7 ~per_family:5) in
  Alcotest.(check (list string)) "same seed, same corpus" a b;
  let c = names (Campaign.corpus ~seed:8 ~per_family:5) in
  Alcotest.(check bool) "different seed, different corpus" false (a = c);
  Alcotest.(check int) "distinct names" (List.length a)
    (List.length (List.sort_uniq compare a));
  (* per_family campaigns for each (family, personality) *)
  Alcotest.(check int) "corpus size"
    (5 * 2 * List.length Campaign.families)
    (List.length a)

(* --- temporal families ----------------------------------------------------- *)

let test_uaf_detected_both_personalities () =
  List.iter
    (fun alloc ->
      List.iter
        (fun (attack, reuse) ->
          let c = temporal ~alloc attack ~size:24 ~reuse ~offset:0 in
          let r = eval c in
          check_blocked_as_expected (Campaign.name c) r;
          Alcotest.(check bool)
            (Campaign.name c ^ ": insecure baseline pwned")
            true r.insecure.Runner.pwned)
        [ (Campaign.Uaf_read, 0); (Campaign.Uaf_write, 1); (Campaign.Uaf_write, 3) ])
    [ Allocator.Glibc; Allocator.Segregated ]

let test_double_free_fasttop_bypass () =
  (* One interleaved victim free bypasses glibc's fasttop check: the
     insecure run corrupts (same chunk handed out twice)... *)
  let bypass = temporal Campaign.Double_free ~size:24 ~reuse:1 ~offset:0 in
  let r = eval bypass in
  Alcotest.(check bool) "fasttop bypassed: insecure pwned" true r.insecure.Runner.pwned;
  check_blocked_as_expected "double-free (bypass)" r;
  (* ... while the naive double free is stopped by the allocator itself. *)
  let naive = temporal Campaign.Double_free ~size:24 ~reuse:0 ~offset:0 in
  let r = eval naive in
  (match r.insecure.Runner.outcome with
  | Runner.Aborted msg ->
    Alcotest.(check bool) ("fasttop abort: " ^ msg) true
      (String.length msg > 0)
  | o -> Alcotest.failf "naive double free should abort insecurely, got %s" (outcome_name o));
  check_blocked_as_expected "double-free (naive)" r

let test_double_free_segregated_always_aborts () =
  (* Out-of-line slot state is authoritative: the fasttop grooming that
     fools glibc changes nothing, every double free aborts. *)
  List.iter
    (fun (size, reuse) ->
      let c =
        temporal ~alloc:Allocator.Segregated Campaign.Double_free ~size ~reuse ~offset:0
      in
      let r = eval c in
      (match r.insecure.Runner.outcome with
      | Runner.Aborted _ -> ()
      | o ->
        Alcotest.failf "%s: segregated double free must abort insecurely, got %s"
          (Campaign.name c) (outcome_name o));
      check_blocked_as_expected (Campaign.name c) r)
    [ (24, 0); (24, 1); (504, 2) ]

let test_fd_poison_context_sensitivity () =
  (* The same grooming chain corrupts glibc's in-memory metadata but is
     inert against out-of-line metadata — yet the enabling UAF write is
     detected under protection on both. *)
  List.iter
    (fun size ->
      let glibc = temporal Campaign.Fd_poison ~size ~reuse:0 ~offset:0 in
      let rg = eval glibc in
      Alcotest.(check bool)
        (Campaign.name glibc ^ ": malloc redirected insecurely")
        true rg.insecure.Runner.pwned;
      check_blocked_as_expected (Campaign.name glibc) rg;
      let seg = temporal ~alloc:Allocator.Segregated Campaign.Fd_poison ~size ~reuse:0 ~offset:0 in
      let rs = eval seg in
      Alcotest.(check bool)
        (Campaign.name seg ^ ": inert against out-of-line metadata")
        false rs.insecure.Runner.pwned;
      (match rs.insecure.Runner.outcome with
      | Runner.Completed -> ()
      | o -> Alcotest.failf "%s: insecure run should complete, got %s" (Campaign.name seg) (outcome_name o));
      check_blocked_as_expected (Campaign.name seg) rs)
    [ 24; 504 ]

let test_chunk_overlap_offset_knob () =
  (* offset 8 hits the next chunk's size field and the overlap lands;
     other offsets corrupt nothing — but the OOB write is detected under
     protection regardless. *)
  let landed = temporal Campaign.Chunk_overlap ~size:24 ~reuse:0 ~offset:8 in
  let r = eval landed in
  Alcotest.(check bool) "forged size: overlap landed" true r.insecure.Runner.pwned;
  check_blocked_as_expected "chunk-overlap o8" r;
  let benign = temporal Campaign.Chunk_overlap ~size:24 ~reuse:0 ~offset:0 in
  let r = eval benign in
  Alcotest.(check bool) "prev_size hit: no overlap" false r.insecure.Runner.pwned;
  check_blocked_as_expected "chunk-overlap o0" r;
  (* unsorted path too *)
  let large = temporal Campaign.Chunk_overlap ~size:504 ~reuse:0 ~offset:8 in
  let r = eval large in
  Alcotest.(check bool) "unsorted overlap landed" true r.insecure.Runner.pwned;
  check_blocked_as_expected "chunk-overlap unsorted" r

(* --- cross-core races ------------------------------------------------------ *)

let race_detected quantum ~free_delay ~use_delay =
  let c = race ~cores:2 ~quantum ~free_delay ~use_delay ~write:true () in
  let r = eval c in
  match r.under_protection.Runner.outcome with
  | Runner.Blocked _ -> true
  | Runner.Completed -> false
  | o -> Alcotest.failf "%s: unexpected outcome %s" (Campaign.name c) (outcome_name o)

let test_race_detection_flips_with_quantum () =
  (* Acceptance criterion: at least one knob point where detection
     flips as only the interleave quantum changes. *)
  let flip =
    List.exists
      (fun (free_delay, use_delay) ->
        let outcomes =
          List.map
            (fun q -> race_detected q ~free_delay ~use_delay)
            (Array.to_list Campaign.quanta)
        in
        List.mem true outcomes && List.mem false outcomes)
      [ (0, 0); (0, 8); (8, 0); (0, 24); (24, 0); (64, 0); (0, 64) ]
  in
  Alcotest.(check bool) "some delay pair flips detection across quanta" true flip

let test_race_stale_use_detected () =
  (* With the use delayed far behind the free, the bus must win: the
     dangling access is caught cross-core, and the insecure baseline
     records the stale access as pwned. *)
  let c = race ~cores:2 ~quantum:1 ~free_delay:0 ~use_delay:64 ~write:true () in
  let r = eval c in
  check_blocked_as_expected (Campaign.name c) r;
  Alcotest.(check bool) "insecure stale access pwned" true r.insecure.Runner.pwned

let test_race_fresh_use_completes () =
  (* With the free delayed far behind the use, the access is legal on
     every interleaving: no violation, no pwn. *)
  let c = race ~cores:2 ~quantum:1 ~free_delay:64 ~use_delay:0 ~write:true () in
  let r = eval c in
  (match r.under_protection.Runner.outcome with
  | Runner.Completed -> ()
  | o -> Alcotest.failf "legal access blocked? (%s)" (outcome_name o));
  Alcotest.(check bool) "no corruption" false r.under_protection.Runner.pwned

(* --- heap-abort accounting (regression) ------------------------------------ *)

let counter_of (stats : Chex86_harness.Pool.merged_stats) name =
  Chex86_stats.Counter.get stats.Chex86_harness.Pool.counters name

let test_sweep_counts_heap_abort_separately () =
  (* A campaign stopped by the allocator must land in
     sweep.outcome.heap_abort, not in the violation bucket (they used to
     fold together). *)
  let aborts = temporal Campaign.Double_free ~size:24 ~reuse:0 ~offset:0 in
  let detected = temporal Campaign.Uaf_read ~size:24 ~reuse:0 ~offset:0 in
  let exploits = List.map Campaign.to_exploit [ aborts; detected ] in
  let _results, stats =
    Security.sweep_stats ~config:Runner.insecure ~jobs:1 exploits
  in
  let get = counter_of stats in
  Alcotest.(check int) "two evaluations" 2 (get "sweep.total");
  Alcotest.(check int) "heap abort counted separately" 1 (get "sweep.outcome.heap_abort");
  Alcotest.(check int) "no violations under the insecure config" 0
    (get "sweep.outcome.violation");
  Alcotest.(check int) "nothing blocked" 0 (get "sweep.blocked");
  Alcotest.(check int) "the UAF completes insecurely" 1 (get "sweep.outcome.completed");
  (* and under protection the same pair is all violations, no aborts *)
  let _results, stats = Security.sweep_stats ~jobs:1 exploits in
  Alcotest.(check int) "both detected" 2 (counter_of stats "sweep.outcome.violation");
  Alcotest.(check int) "allocator never reached" 0
    (counter_of stats "sweep.outcome.heap_abort")

(* --- qcheck shrinking ------------------------------------------------------ *)

let test_shrinking_finds_minimal_reproducer () =
  (* Seeded detection regression: a scope-crippled variant (empty
     instruction-range scope) detects nothing, so "campaign is blocked"
     fails everywhere — and the shrinker must walk any counterexample
     down to the canonical minimal campaign. *)
  let crippled =
    Runner.Chex
      (Chex86.Variant.make ~scope:(Chex86.Variant.Ranges []) Chex86.Variant.Microcode_prediction)
  in
  let prop c =
    let e = Campaign.to_exploit c in
    match (Security.evaluate ~config:crippled e).under_protection.Runner.outcome with
    | Runner.Blocked _ -> true
    | _ -> false
  in
  let cell = QCheck.Test.make_cell ~count:4 ~name:"crippled variant detects" Campaign.arbitrary prop in
  let result = QCheck.Test.check_cell ~rand:(Random.State.make [| 42 |]) cell in
  match QCheck.TestResult.get_state result with
  | QCheck.TestResult.Failed { instances = cex :: _ } ->
    Alcotest.(check string) "shrunk to the minimal campaign"
      (Campaign.name Campaign.minimal)
      (Campaign.name cex.QCheck.TestResult.instance)
  | QCheck.TestResult.Failed { instances = [] } | QCheck.TestResult.Success ->
    Alcotest.fail "property unexpectedly passed under the crippled variant"
  | QCheck.TestResult.Failed_other { msg } -> Alcotest.failf "qcheck: %s" msg
  | QCheck.TestResult.Error { exn; _ } -> raise exn

(* --- detection matrices ---------------------------------------------------- *)

let matrix_configs = [ Runner.insecure; Runner.prediction ]

let small_corpus = Campaign.corpus ~seed:3 ~per_family:2

let matrix_json ?jobs ?batch_size () =
  Chex86_stats.Json.to_string
    (Security.matrix_to_json
       (Security.campaign_matrix ?jobs ?batch_size ~configs:matrix_configs small_corpus))

let test_matrix_geometry_stable () =
  let reference = matrix_json ~jobs:1 () in
  Alcotest.(check string) "jobs=2 byte-identical" reference (matrix_json ~jobs:2 ());
  Alcotest.(check string) "batch_size=1 byte-identical" reference
    (matrix_json ~jobs:3 ~batch_size:1 ());
  Alcotest.(check string) "batch_size=7 byte-identical" reference
    (matrix_json ~jobs:2 ~batch_size:7 ())

let test_matrix_personalities_differ () =
  (* Context sensitivity: at least one family's row differs between the
     two allocator personalities under the same configuration. *)
  let matrix = Security.campaign_matrix ~jobs:2 ~configs:matrix_configs small_corpus in
  let differs =
    List.exists
      (fun family ->
        List.exists
          (fun config ->
            let cname = Runner.config_name config in
            let find alloc =
              List.assoc_opt (family, alloc, cname) matrix
            in
            match (find "glibc", find "seg") with
            | Some g, Some s -> g <> s
            | _ -> false)
          matrix_configs)
      Campaign.families
  in
  Alcotest.(check bool) "some family distinguishes the personalities" true differs

let test_matrix_matches_golden () =
  (* The checked-in golden matrix (test/golden/campaign_matrix.json,
     regenerated with `security_eval --campaign-matrix --matrix-seed 1
     --matrix-per-family 4 --matrix-out ...`) must match a fresh
     computation byte for byte. *)
  (* `dune runtest` runs us in test/, `dune exec` from the repo root. *)
  let path =
    List.find Sys.file_exists
      [ "golden/campaign_matrix.json"; "test/golden/campaign_matrix.json" ]
  in
  let golden = In_channel.with_open_bin path In_channel.input_all in
  let corpus = Campaign.corpus ~seed:1 ~per_family:4 in
  let configs =
    [
      Runner.insecure;
      Runner.Chex (Chex86.Variant.make Chex86.Variant.Microcode_always_on);
      Runner.prediction;
    ]
  in
  let fresh =
    Chex86_stats.Json.to_string
      (Security.matrix_to_json (Security.campaign_matrix ~configs corpus))
    ^ "\n"
  in
  Alcotest.(check string) "matrix matches the golden file" golden fresh

let test_matrix_rows_cover_corpus () =
  let matrix = Security.campaign_matrix ~jobs:2 ~configs:matrix_configs small_corpus in
  let per_config =
    List.length small_corpus
  in
  List.iter
    (fun config ->
      let cname = Runner.config_name config in
      let total =
        List.fold_left
          (fun acc ((_, _, c), (cell : Security.matrix_cell)) ->
            if c = cname then acc + cell.Security.total else acc)
          0 matrix
      in
      Alcotest.(check int) ("every campaign counted under " ^ cname) per_config total)
    matrix_configs

let () =
  Alcotest.run "campaign"
    [
      ( "names",
        [
          QCheck_alcotest.to_alcotest qcheck_name_roundtrip;
          Alcotest.test_case "of_name rejects garbage" `Quick test_of_name_rejects_garbage;
          Alcotest.test_case "Exploits.find resolves campaigns" `Quick
            test_find_resolves_campaigns;
        ] );
      ( "corpus",
        [ Alcotest.test_case "deterministic" `Quick test_corpus_deterministic ] );
      ( "temporal",
        [
          Alcotest.test_case "uaf detected on both personalities" `Quick
            test_uaf_detected_both_personalities;
          Alcotest.test_case "double free: fasttop bypass" `Quick
            test_double_free_fasttop_bypass;
          Alcotest.test_case "double free: segregated always aborts" `Quick
            test_double_free_segregated_always_aborts;
          Alcotest.test_case "fd poison: context sensitivity" `Quick
            test_fd_poison_context_sensitivity;
          Alcotest.test_case "chunk overlap: offset knob" `Quick
            test_chunk_overlap_offset_knob;
        ] );
      ( "races",
        [
          Alcotest.test_case "detection flips with quantum" `Quick
            test_race_detection_flips_with_quantum;
          Alcotest.test_case "stale use detected cross-core" `Quick
            test_race_stale_use_detected;
          Alcotest.test_case "fresh use completes" `Quick test_race_fresh_use_completes;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "heap aborts counted separately" `Quick
            test_sweep_counts_heap_abort_separately;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "minimal reproducer" `Slow
            test_shrinking_finds_minimal_reproducer;
        ] );
      ( "matrices",
        [
          Alcotest.test_case "byte-stable across geometries" `Slow
            test_matrix_geometry_stable;
          Alcotest.test_case "personalities differ" `Slow test_matrix_personalities_differ;
          Alcotest.test_case "rows cover the corpus" `Slow test_matrix_rows_cover_corpus;
          Alcotest.test_case "matches the golden file" `Slow test_matrix_matches_golden;
        ] );
    ]
