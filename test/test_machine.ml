(* Tests for the machine: functional engine semantics (arithmetic,
   control flow, memory, stubs, FP, widths), the branch predictor, and
   sanity properties of the timing model. *)

open Chex86_isa
module Engine = Chex86_machine.Engine
module Simulator = Chex86_machine.Simulator
module Bpred = Chex86_machine.Bpred
module Counter = Chex86_stats.Counter

(* Build a program from an instruction list (entry at the start). *)
let prog insns =
  let b = Asm.create () in
  Asm.label b "_start";
  List.iter (Asm.emit b) insns;
  Asm.build b

(* Run functionally; return the engine for state inspection. *)
let run_functional ?(max_insns = 1_000_000) program =
  let proc = Chex86_os.Process.load program in
  let engine = Engine.create proc in
  let rec loop n =
    if n > max_insns then Alcotest.fail "instruction budget exceeded"
    else match Engine.step engine with None -> () | Some _ -> loop (n + 1)
  in
  loop 0;
  engine

let check_reg engine reg expected =
  Alcotest.(check int) (Reg.name reg) expected (Engine.read_reg engine reg)

let test_arithmetic () =
  let e =
    run_functional
      (prog
         [
           Mov (W64, Reg RAX, Imm 10);
           Mov (W64, Reg RBX, Imm 3);
           Alu (Add, Reg RAX, Reg RBX);  (* 13 *)
           Alu (Imul, Reg RAX, Imm 4);  (* 52 *)
           Alu (Sub, Reg RAX, Imm 2);  (* 50 *)
           Mov (W64, Reg RCX, Reg RAX);
           Alu (And, Reg RCX, Imm 0x3C);  (* 0x30 *)
           Alu (Or, Reg RCX, Imm 1);  (* 0x31 *)
           Alu (Xor, Reg RCX, Imm 0xF0);  (* 0xC1 *)
           Alu (Shl, Reg RCX, Imm 2);
           Alu (Shr, Reg RCX, Imm 1);
           Neg RBX;
           Halt;
         ])
  in
  check_reg e RAX 50;
  check_reg e RCX (0xC1 lsl 1);
  check_reg e RBX (-3)

let test_lea () =
  let e =
    run_functional
      (prog
         [
           Mov (W64, Reg RBX, Imm 0x1000);
           Mov (W64, Reg RCX, Imm 4);
           Lea (RAX, Insn.mem ~base:RBX ~index:RCX ~scale:8 ~disp:16 ());
           Halt;
         ])
  in
  check_reg e RAX (0x1000 + 32 + 16)

let test_loop_and_conditions () =
  (* sum 1..10 via a loop *)
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.emit b (Mov (W64, Reg RAX, Imm 0));
  Asm.emit b (Mov (W64, Reg RCX, Imm 1));
  Asm.label b "loop";
  Asm.emit b (Alu (Add, Reg RAX, Reg RCX));
  Asm.emit b (Insn.Inc (Reg RCX));
  Asm.emit b (Cmp (Reg RCX, Imm 10));
  Asm.emit b (Jcc (Le, "loop"));
  Asm.emit b Halt;
  let e = run_functional (Asm.build b) in
  check_reg e RAX 55

let test_all_conditions () =
  (* For each condition, set rbx=1 if (5 ? 7) holds. *)
  let check cond expected =
    let b = Asm.create () in
    Asm.label b "_start";
    Asm.emit b (Mov (W64, Reg RBX, Imm 0));
    Asm.emit b (Mov (W64, Reg RAX, Imm 5));
    Asm.emit b (Cmp (Reg RAX, Imm 7));
    Asm.emit b (Jcc (cond, "taken"));
    Asm.emit b (Insn.Jmp "end");
    Asm.label b "taken";
    Asm.emit b (Mov (W64, Reg RBX, Imm 1));
    Asm.label b "end";
    Asm.emit b Halt;
    let e = run_functional (Asm.build b) in
    Alcotest.(check int) (Insn.cond_name cond) expected (Engine.read_reg e RBX)
  in
  check Eq 0;
  check Ne 1;
  check Lt 1;
  check Le 1;
  check Gt 0;
  check Ge 0

let test_memory_widths () =
  let b = Asm.create () in
  let g = Asm.global b "buf" 16 in
  Asm.label b "_start";
  Asm.emit b (Mov (W64, Reg RAX, Imm 0x1122334455667788));
  Asm.emit b (Mov (W64, Mem (Insn.mem_abs g), Reg RAX));
  Asm.emit b (Mov (W8, Reg RBX, Mem (Insn.mem_abs g)));
  Asm.emit b (Mov (W16, Reg RCX, Mem (Insn.mem_abs g)));
  Asm.emit b (Mov (W32, Reg RDX, Mem (Insn.mem_abs g)));
  Asm.emit b (Mov (W8, Mem (Insn.mem_abs (g + 8)), Imm 0x1FF));  (* truncated *)
  Asm.emit b (Mov (W64, Reg RSI, Mem (Insn.mem_abs (g + 8))));
  Asm.emit b Halt;
  let e = run_functional (Asm.build b) in
  check_reg e RBX 0x88;
  check_reg e RCX 0x7788;
  check_reg e RDX 0x55667788;
  check_reg e RSI 0xFF

let test_call_ret_stack () =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.emit b (Mov (W64, Reg RAX, Imm 1));
  Asm.emit b (Call (Label "double_it"));
  Asm.emit b (Call (Label "double_it"));
  Asm.emit b Halt;
  Asm.label b "double_it";
  Asm.emit b (Alu (Add, Reg RAX, Reg RAX));
  Asm.emit b Ret;
  let e = run_functional (Asm.build b) in
  check_reg e RAX 4;
  Alcotest.(check int) "stack pointer restored" Program.stack_top
    (Engine.read_reg e RSP)

let test_push_pop () =
  let e =
    run_functional
      (prog
         [
           Mov (W64, Reg RAX, Imm 111);
           Mov (W64, Reg RBX, Imm 222);
           Push (Reg RAX);
           Push (Reg RBX);
           Pop RCX;
           Pop RDX;
           Halt;
         ])
  in
  check_reg e RCX 222;
  check_reg e RDX 111

let test_indirect_control () =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.emit b (Mov (W64, Reg RAX, Imm 0));
  Asm.emit b (Mov (W64, Reg R10, Imm (Program.text_base + (4 * 4))));  (* &target *)
  Asm.emit b (Insn.Jmp_reg R10);
  Asm.emit b (Mov (W64, Reg RAX, Imm 99));  (* skipped *)
  Asm.label b "target";
  Asm.emit b (Insn.Inc (Reg RAX));
  Asm.emit b Halt;
  let e = run_functional (Asm.build b) in
  check_reg e RAX 1

(* Call through a register; the target address is the known index of the
   "fn" label. *)
let test_call_reg_simple () =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.emit b (Insn.Jmp "main");
  Asm.label b "fn";
  Asm.emit b (Mov (W64, Reg RAX, Imm 77));
  Asm.emit b Ret;
  Asm.label b "main";
  (* fn is instruction index 1 *)
  Asm.emit b (Mov (W64, Reg R11, Imm (Program.addr_of_index 1)));
  Asm.emit b (Insn.Call_reg R11);
  Asm.emit b Halt;
  let e = run_functional (Asm.build b) in
  check_reg e RAX 77

let test_fp () =
  let b = Asm.create () in
  let g = Asm.global b "out" 8 in
  Asm.label b "_start";
  Asm.emit b (Mov (W64, Reg RAX, Imm 9));
  Asm.emit b (Cvtsi2sd (0, RAX));
  Asm.emit b (Insn.Fp (Fsqrt, 1, 0));  (* xmm1 = 3.0 *)
  Asm.emit b (Insn.Fp (Fadd, 1, 0));  (* 12.0 *)
  Asm.emit b (Insn.Fp (Fmul, 1, 1));  (* 144.0 *)
  Asm.emit b (Movsd_store (Insn.mem_abs g, 1));
  Asm.emit b (Movsd_load (2, Insn.mem_abs g));
  Asm.emit b (Cvtsd2si (RBX, 2));
  Asm.emit b Halt;
  let e = run_functional (Asm.build b) in
  check_reg e RBX 144

let test_malloc_stub () =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.call_malloc b 64;
  Asm.emit b (Mov (W64, Mem (Insn.mem_of_reg RAX), Imm 42));
  Asm.emit b (Mov (W64, Reg RBX, Mem (Insn.mem_of_reg RAX)));
  Asm.call_free b RAX;
  Asm.emit b Halt;
  let e = run_functional (Asm.build b) in
  check_reg e RBX 42

let test_memset_memcpy_stubs () =
  let b = Asm.create () in
  let src = Asm.global b "src" 16 and dst = Asm.global b "dst" 16 in
  Asm.label b "_start";
  Asm.emit b (Mov (W64, Reg RDI, Imm src));
  Asm.emit b (Mov (W64, Reg RSI, Imm 0xAB));
  Asm.emit b (Mov (W64, Reg RDX, Imm 8));
  Asm.call_extern b "memset";
  Asm.emit b (Mov (W64, Reg RDI, Imm dst));
  Asm.emit b (Mov (W64, Reg RSI, Imm src));
  Asm.emit b (Mov (W64, Reg RDX, Imm 8));
  Asm.call_extern b "memcpy";
  Asm.emit b (Mov (W64, Reg RBX, Mem (Insn.mem_abs dst)));
  Asm.emit b Halt;
  let e = run_functional (Asm.build b) in
  (* 0xAB repeated; the top byte is clipped by OCaml's 63-bit int, so
     compare the low 7 bytes. *)
  Alcotest.(check int) "memset+memcpy pattern" 0xABABABABABABAB
    (Engine.read_reg e RBX land 0xFFFFFFFFFFFFFF)

let test_guest_fault_on_wild_fetch () =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.emit b (Mov (W64, Reg R10, Imm 0x12345678));
  Asm.emit b (Insn.Jmp_reg R10);
  Asm.emit b Halt;
  let proc = Chex86_os.Process.load (Asm.build b) in
  let engine = Engine.create proc in
  ignore (Engine.step engine);
  ignore (Engine.step engine);
  Alcotest.check_raises "fetch outside text"
    (Engine.Guest_fault "execution left the text segment at 0x12345678") (fun () ->
      ignore (Engine.step engine))

let test_bpred_learns_loop () =
  let g = Counter.create_group () in
  let bp = Bpred.create g in
  (* A loop branch: taken 63 times, then fall through; repeated. *)
  for _ = 1 to 20 do
    for i = 1 to 64 do
      ignore (Bpred.resolve bp ~pc:0x400100 ~kind:(Uop.Cond Insn.Ne) ~taken:(i < 64) ~target:0x400080)
    done
  done;
  let correct = Counter.get g "bpred.cond_correct"
  and wrong = Counter.get g "bpred.cond_mispredict" in
  Alcotest.(check bool)
    (Printf.sprintf "high accuracy (%d/%d)" correct (correct + wrong))
    true
    (float_of_int correct /. float_of_int (correct + wrong) > 0.9)

let test_bpred_ras () =
  let g = Counter.create_group () in
  let bp = Bpred.create g in
  ignore (Bpred.resolve bp ~pc:0x400100 ~kind:Uop.Call ~taken:true ~target:0x400200);
  ignore (Bpred.resolve bp ~pc:0x400300 ~kind:Uop.Call ~taken:true ~target:0x400400);
  ignore (Bpred.resolve bp ~pc:0x400500 ~kind:Uop.Ret ~taken:true ~target:0x400304);
  ignore (Bpred.resolve bp ~pc:0x400600 ~kind:Uop.Ret ~taken:true ~target:0x400104);
  Alcotest.(check int) "returns predicted by RAS" 2 (Counter.get g "bpred.ras_correct")

let test_bpred_btb () =
  let g = Counter.create_group () in
  let bp = Bpred.create g in
  ignore (Bpred.resolve bp ~pc:0x400100 ~kind:Uop.Indirect ~taken:true ~target:0x400800);
  ignore (Bpred.resolve bp ~pc:0x400100 ~kind:Uop.Indirect ~taken:true ~target:0x400800);
  Alcotest.(check int) "second indirect hits BTB" 1 (Counter.get g "bpred.btb_correct")

let timed_run program =
  let proc = Chex86_os.Process.load program in
  let sim = Simulator.create proc in
  Simulator.run sim

let test_timing_sanity () =
  let straight =
    prog (List.init 200 (fun i -> Insn.Mov (W64, Reg RAX, Imm i)) @ [ Insn.Halt ])
  in
  let r = timed_run straight in
  Alcotest.(check bool) "cycles positive" true (r.Simulator.cycles > 0);
  Alcotest.(check bool) "bounded by fetch width" true
    (r.Simulator.cycles > 200 / Chex86_machine.Config.default.fetch_width);
  Alcotest.(check int) "uop count" 201 r.Simulator.uops

let test_timing_mispredict_costs () =
  (* Data-dependent unpredictable branches vs the same loop without them. *)
  let branchy =
    let b = Asm.create () in
    Asm.label b "_start";
    Asm.emit b (Mov (W64, Reg R9, Imm 0x1234567));
    Asm.loop_n b ~counter:R15 ~n:2000 (fun () ->
        Chex86_workloads.Kernels.lcg_next b ~state:R9 ~dst:R10;
        Asm.emit b (Test (Reg R10, Imm 1));
        let skip = Asm.fresh b "skip" in
        Asm.emit b (Jcc (Eq, skip));
        Asm.emit b (Insn.Inc (Reg RAX));
        Asm.label b skip);
    Asm.emit b Halt;
    Asm.build b
  in
  let predictable =
    let b = Asm.create () in
    Asm.label b "_start";
    Asm.emit b (Mov (W64, Reg R9, Imm 0x1234567));
    Asm.loop_n b ~counter:R15 ~n:2000 (fun () ->
        Chex86_workloads.Kernels.lcg_next b ~state:R9 ~dst:R10;
        Asm.emit b (Test (Reg R10, Imm 0));  (* never taken *)
        let skip = Asm.fresh b "skip" in
        Asm.emit b (Jcc (Ne, skip));
        Asm.emit b (Insn.Inc (Reg RAX));
        Asm.label b skip);
    Asm.emit b Halt;
    Asm.build b
  in
  let rb = timed_run branchy and rp = timed_run predictable in
  Alcotest.(check bool)
    (Printf.sprintf "mispredicts cost cycles (%d vs %d)" rb.Simulator.cycles
       rp.Simulator.cycles)
    true
    (rb.Simulator.cycles > rp.Simulator.cycles)

(* The key property of the latency split: [commit_latency] (shadow
   lookups off the critical path) must not serialize a dependent chain,
   while the same amount of [extra_latency] must. *)
let test_commit_vs_result_latency () =
  let chase_program () =
    (* A long load-to-load dependent chain through a linked list. *)
    let b = Asm.create () in
    let slot = Asm.global b "head" 8 in
    Asm.label b "_start";
    Chex86_workloads.Kernels.build_list b ~n:400 ~node_size:32 ~head:RBX ~head_slot:slot;
    Chex86_workloads.Kernels.chase_list b ~head:RBX;
    Asm.emit b Halt;
    Asm.build b
  in
  let run_with reaction_of =
    let proc = Chex86_os.Process.load (chase_program ()) in
    let hooks = Chex86_machine.Hooks.none () in
    hooks.Chex86_machine.Hooks.active <- true;
    hooks.Chex86_machine.Hooks.exec_uop <-
      (fun _ uop ~ea:_ ~result:_ ->
        match uop with Chex86_isa.Uop.Load _ -> reaction_of () | _ -> Chex86_machine.Hooks.no_reaction);
    let sim = Simulator.create ~hooks proc in
    (Simulator.run sim).Simulator.cycles
  in
  let baseline = run_with (fun () -> Chex86_machine.Hooks.no_reaction) in
  let commit_side =
    run_with (fun () -> { Chex86_machine.Hooks.no_reaction with commit_latency = 50 })
  in
  let result_side =
    run_with (fun () -> { Chex86_machine.Hooks.no_reaction with extra_latency = 50 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "commit latency is absorbed (%d vs %d)" commit_side baseline)
    true
    (float_of_int commit_side < 1.3 *. float_of_int baseline);
  Alcotest.(check bool)
    (Printf.sprintf "result latency serializes the chain (%d vs %d)" result_side baseline)
    true
    (result_side > 2 * baseline)

(* ---- Direct pipeline-timing regressions ------------------------------ *)

module Pipeline = Chex86_machine.Pipeline
module MHooks = Chex86_machine.Hooks

(* The engine's step/exec_uop records are plain mutable structs, so the
   tests below synthesize exact uop/ea/reaction sequences that the full
   engine cannot easily be coaxed into producing. *)
let eu ?(killed = 0) ?(ea = 0) uop =
  {
    Engine.uop;
    ea;
    reaction =
      (if killed = 0 then MHooks.no_reaction
       else
         { MHooks.extra_latency = 0; commit_latency = 0; flush = false; killed_uops = killed });
  }

let mk_step ~pc uops =
  { Engine.pc; insn = None; native = None; path = Decoder.Simple; uops; branch = None }

let pipeline_cycles steps =
  let g = Counter.create_group () in
  let p = Pipeline.create (Chex86_mem.Hierarchy.create g) g in
  List.iter (Pipeline.on_step p) steps;
  Pipeline.cycles p

(* Regression for the fetch-slot overflow bug: a zero-idiom kill burst of
   [3 * fetch_width] µops must push fetch forward three whole cycles.
   The old code charged a single cycle for an arbitrarily large backlog. *)
let test_fetch_kill_burst_carry () =
  let w = Chex86_machine.Config.default.fetch_width in
  let steps killed =
    List.init 64 (fun i ->
        mk_step ~pc:0x1000 [| eu ~killed:(if i = 0 then killed else 0) Uop.Nop |])
  in
  let base = pipeline_cycles (steps 0) in
  let burst = pipeline_cycles (steps (3 * w)) in
  Alcotest.(check int) "3*fetch_width kill burst carries 3 whole cycles" (base + 3) burst

(* Regression for the store-forwarding table: the old implementation
   wholesale-reset all in-flight forwarding state once its hashtable
   crossed 8192 entries.  The direct-mapped replacement must keep
   forwarding a granule across more than 8192 intervening stores to
   non-conflicting slots, and lose it only to a store that actually
   conflicts on its slot.  The load feeds a long dependent ALU chain so
   its completion time (forwarded vs D-cache) is visible past the
   store-port commit backlog. *)
let test_store_forwarding_survives_old_threshold () =
  let mem0 = Insn.mem_abs 0 in
  let target = 0x100000 in  (* granule 0x20000: slot 0 of the 8192-slot table *)
  let conflict = target + (8192 * 8) in  (* different granule, same slot *)
  let store a = eu ~ea:a (Uop.Store { src = Uop.Imm 0; mem = mem0; width = Insn.W64 }) in
  let load a = eu ~ea:a (Uop.Load { dst = Uop.Greg Reg.RAX; mem = mem0; width = Insn.W64 }) in
  let alu =
    Uop.Alu { op = Insn.Add; dst = Uop.Greg Reg.RAX; src1 = Uop.Greg Reg.RAX; src2 = Uop.Imm 1 }
  in
  (* 8192 distinct granules, none landing in slot 0: crosses the old
     reset threshold together with [target]. *)
  let fillers = List.init 8192 (fun i -> store (8 * (if i < 8191 then i + 1 else 8193))) in
  let run ~conflicting =
    let uops =
      (store target :: fillers)
      @ (if conflicting then [ store conflict ] else [])
      @ load target
        :: List.init 8192 (fun _ -> eu alu)
    in
    pipeline_cycles (List.map (fun u -> mk_step ~pc:0x1000 [| u |]) uops)
  in
  let forwarded = run ~conflicting:false in
  let displaced = run ~conflicting:true in
  Alcotest.(check bool)
    (Printf.sprintf "forwarding survives 8192+ stores (%d < %d)" forwarded displaced)
    true (forwarded < displaced)

let test_simulator_budget () =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.label b "spin";
  Asm.emit b (Insn.Jmp "spin");
  let proc = Chex86_os.Process.load (Asm.build b) in
  let sim = Simulator.create proc in
  let r = Simulator.run ~max_insns:1000 sim in
  Alcotest.(check bool) "budget exhausted" true (r.Simulator.outcome = Simulator.Budget_exhausted)

let () =
  Alcotest.run "machine"
    [
      ( "engine",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "lea" `Quick test_lea;
          Alcotest.test_case "loop + flags" `Quick test_loop_and_conditions;
          Alcotest.test_case "all conditions" `Quick test_all_conditions;
          Alcotest.test_case "memory widths" `Quick test_memory_widths;
          Alcotest.test_case "call/ret" `Quick test_call_ret_stack;
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "indirect jump" `Quick test_indirect_control;
          Alcotest.test_case "indirect call" `Quick test_call_reg_simple;
          Alcotest.test_case "fp" `Quick test_fp;
          Alcotest.test_case "malloc stub" `Quick test_malloc_stub;
          Alcotest.test_case "memset/memcpy stubs" `Quick test_memset_memcpy_stubs;
          Alcotest.test_case "guest fault" `Quick test_guest_fault_on_wild_fetch;
        ] );
      ( "bpred",
        [
          Alcotest.test_case "learns loop" `Quick test_bpred_learns_loop;
          Alcotest.test_case "RAS" `Quick test_bpred_ras;
          Alcotest.test_case "BTB" `Quick test_bpred_btb;
        ] );
      ( "timing",
        [
          Alcotest.test_case "sanity" `Quick test_timing_sanity;
          Alcotest.test_case "mispredict cost" `Quick test_timing_mispredict_costs;
          Alcotest.test_case "commit vs result latency" `Quick
            test_commit_vs_result_latency;
          Alcotest.test_case "budget" `Quick test_simulator_budget;
          Alcotest.test_case "fetch kill-burst carry" `Quick test_fetch_kill_burst_carry;
          Alcotest.test_case "store forwarding past old threshold" `Quick
            test_store_forwarding_survives_old_threshold;
        ] );
    ]
